"""Application models: Pangu replication, ESSD I/O, X-DB transactions."""

import pytest

from repro.apps import EssdFrontend, PanguDeployment, XdbFrontend
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.workloads.traces import burst_profile
from tests.conftest import run_process


@pytest.fixture
def pangu():
    cluster = build_cluster(8)
    deployment = PanguDeployment.build(
        cluster, block_hosts=[0, 1], chunk_hosts=[2, 3, 4, 5], replicas=3)
    deployment.establish_mesh()
    return cluster, deployment


def test_mesh_establishment_is_full(pangu):
    cluster, deployment = pangu
    assert deployment.total_connections == 2 * 4
    assert deployment.qp_count() >= 8


def test_block_write_replicates(pangu):
    cluster, deployment = pangu
    block = deployment.block_servers[0]

    def scenario():
        latency = yield from block.write_block(128 * 1024)
        return latency

    latency = run_process(cluster, scenario(), limit=5 * SECONDS)
    assert latency > 0
    written = sum(cs.chunks_written for cs in deployment.chunk_servers)
    assert written == 3
    assert block.writes_completed == 1


def test_replica_placement_rotates(pangu):
    cluster, deployment = pangu
    block = deployment.block_servers[0]

    def scenario():
        for _ in range(4):
            yield from block.write_block(4096)

    run_process(cluster, scenario(), limit=5 * SECONDS)
    # 4 writes × 3 replicas over 4 chunk servers: all servers touched.
    assert all(cs.chunks_written >= 2 for cs in deployment.chunk_servers)


def test_too_few_chunk_servers_raises():
    cluster = build_cluster(4)
    deployment = PanguDeployment.build(
        cluster, block_hosts=[0], chunk_hosts=[1, 2], replicas=3)
    deployment.establish_mesh()
    block = deployment.block_servers[0]

    def scenario():
        yield from block.write_block(4096)

    with pytest.raises(RuntimeError, match="chunk servers"):
        run_process(cluster, scenario(), limit=5 * SECONDS)


def test_essd_closed_loop_io(pangu):
    cluster, deployment = pangu
    frontend = EssdFrontend(cluster, host_id=6, block_server_host=0)

    def scenario():
        completed = yield from frontend.run_closed_loop(40)
        return completed

    completed = run_process(cluster, scenario(), limit=30 * SECONDS)
    assert completed == 40
    assert frontend.failures == 0
    timeline = frontend.iops_timeline(bucket_ns=10 * MILLIS)
    assert timeline and max(iops for _, iops in timeline) > 0
    # Every I/O was replicated 3 ways.
    written = sum(cs.chunks_written for cs in deployment.chunk_servers)
    assert written == 120


def test_essd_profile_driven_io(pangu):
    cluster, deployment = pangu
    frontend = EssdFrontend(cluster, host_id=6, block_server_host=0,
                            io_bytes=16 * 1024)
    profile = burst_profile(duration_ns=200 * MILLIS, base=500, burst=1500,
                            burst_start_ns=80 * MILLIS,
                            burst_len_ns=60 * MILLIS)

    def scenario():
        yield from frontend.run_profile(profile, 200 * MILLIS)

    run_process(cluster, scenario(), limit=30 * SECONDS)
    cluster.sim.run(until=cluster.sim.now + 100 * MILLIS)
    assert len(frontend.completions) > 30
    timeline = frontend.iops_timeline(bucket_ns=40 * MILLIS)
    peak = max(iops for _, iops in timeline)
    floor = min(iops for _, iops in timeline[:-1] or timeline)
    assert peak > floor  # the burst is visible


def test_xdb_transactions(pangu):
    cluster, deployment = pangu
    frontend = XdbFrontend(cluster, host_id=7, block_server_host=1)

    def scenario():
        completed = yield from frontend.run_transactions(15)
        return completed

    completed = run_process(cluster, scenario(), limit=30 * SECONDS)
    assert completed == 15
    assert frontend.failures == 0
    latencies = [latency for _, latency in frontend.txn_completions]
    assert all(lat > 0 for lat in latencies)
    # Each txn wrote one redo block, 3-way replicated.
    written = sum(cs.chunks_written for cs in deployment.chunk_servers)
    assert written == 45


def test_essd_and_xdb_share_the_deployment(pangu):
    cluster, deployment = pangu
    essd = EssdFrontend(cluster, host_id=6, block_server_host=0)
    xdb = XdbFrontend(cluster, host_id=7, block_server_host=1)
    essd_proc = cluster.sim.spawn(essd.run_closed_loop(20))
    xdb_proc = cluster.sim.spawn(xdb.run_transactions(10))
    cluster.sim.run_until_event(
        cluster.sim.all_of([essd_proc, xdb_proc]),
        limit=cluster.sim.now + 60 * SECONDS)
    assert len(essd.completions) == 20
    assert len(xdb.txn_completions) == 10
