"""ERPC: the protobuf RPC framework over X-RDMA."""

import pytest

from repro.apps import ErpcClient, ErpcError, ErpcServer, ErpcService
from repro.sim import MILLIS, SECONDS
from tests.conftest import run_process
from tests.xrdma.conftest import make_context


@pytest.fixture
def rpc(cluster):
    server_ctx = make_context(cluster, 1)
    server = ErpcServer(server_ctx)
    kv = ErpcService("kv")
    store = {}

    @kv.method
    def put(request):
        store[request["key"]] = request["value"]
        return {"ok": True}, 64

    @kv.method
    def get(request):
        if request["key"] not in store:
            raise KeyError(request["key"])
        return {"value": store[request["key"]]}, 256

    @kv.method
    def bulk(request):
        return {"blob": True}, request["nbytes"]

    server.register(kv)
    server.serve(9800)
    client = ErpcClient(make_context(cluster, 0))
    return cluster, server, client, store


def test_call_roundtrip(rpc):
    cluster, server, client, store = rpc

    def scenario():
        yield from client.connect(1, 9800)
        reply = yield from client.call("kv.put", {"key": "a", "value": 7},
                                       request_bytes=128)
        assert reply == {"ok": True}
        reply = yield from client.call("kv.get", {"key": "a"},
                                       request_bytes=64)
        return reply

    reply = run_process(cluster, scenario(), limit=5 * SECONDS)
    assert reply == {"value": 7}
    assert server.calls_served == 2
    assert client.calls_made == 2


def test_unknown_method_raises(rpc):
    cluster, server, client, store = rpc

    def scenario():
        yield from client.connect(1, 9800)
        yield from client.call("kv.nope", {}, request_bytes=64)

    with pytest.raises(ErpcError, match="unknown method"):
        run_process(cluster, scenario(), limit=5 * SECONDS)
    assert server.errors_returned == 1


def test_handler_exception_propagates(rpc):
    cluster, server, client, store = rpc

    def scenario():
        yield from client.connect(1, 9800)
        yield from client.call("kv.get", {"key": "missing"},
                               request_bytes=64)

    with pytest.raises(ErpcError, match="missing"):
        run_process(cluster, scenario(), limit=5 * SECONDS)


def test_large_responses_use_rendezvous(rpc):
    cluster, server, client, store = rpc

    def scenario():
        yield from client.connect(1, 9800)
        reply = yield from client.call("kv.bulk", {"nbytes": 1 << 20},
                                       request_bytes=64)
        return reply

    reply = run_process(cluster, scenario(), limit=5 * SECONDS)
    assert reply == {"blob": True}
    assert client.channel.stats["rendezvous_reads"] >= 1


def test_call_before_connect_raises(rpc):
    cluster, server, client, store = rpc

    def scenario():
        yield from client.call("kv.get", {"key": "a"}, request_bytes=64)

    with pytest.raises(ErpcError, match="not connected"):
        run_process(cluster, scenario(), limit=SECONDS)


def test_call_timeout_on_dead_server(rpc):
    cluster, server, client, store = rpc

    def scenario():
        yield from client.connect(1, 9800)
        cluster.host(1).nic.crash()
        yield from client.call("kv.get", {"key": "a"}, request_bytes=64,
                               timeout_ns=50 * MILLIS)

    with pytest.raises(ErpcError, match="timed out"):
        run_process(cluster, scenario(), limit=30 * SECONDS)


def test_duplicate_service_rejected(rpc):
    cluster, server, client, store = rpc
    with pytest.raises(ValueError):
        server.register(ErpcService("kv"))


def test_concurrent_clients(rpc):
    cluster, server, client, store = rpc
    second = ErpcClient(make_context(cluster, 2))
    results = []

    def caller(rpc_client, key, value):
        yield from rpc_client.connect(1, 9800)
        yield from rpc_client.call("kv.put", {"key": key, "value": value},
                                   request_bytes=64)
        reply = yield from rpc_client.call("kv.get", {"key": key},
                                           request_bytes=64)
        results.append((key, reply["value"]))

    proc_a = cluster.sim.spawn(caller(client, "x", 1))
    proc_b = cluster.sim.spawn(caller(second, "y", 2))
    cluster.sim.run_until_event(cluster.sim.all_of([proc_a, proc_b]),
                                limit=cluster.sim.now + 10 * SECONDS)
    assert sorted(results) == [("x", 1), ("y", 2)]
