"""PolarDB's two back-end modes (Sec. II-C)."""

from statistics import mean

import pytest

from repro.apps import PanguDeployment, PolarDbFrontend, PolarStoreNode
from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.workloads.traces import diurnal_profile
from tests.conftest import run_process


def test_native_mode_replicates_to_two_stores():
    cluster = build_cluster(4)
    stores = [PolarStoreNode(cluster, h) for h in (1, 2)]
    frontend = PolarDbFrontend(cluster, host_id=0, mode="native",
                               store_hosts=[1, 2])

    def scenario():
        completed = yield from frontend.run_pages(10)
        return completed

    assert run_process(cluster, scenario(), limit=30 * SECONDS) == 10
    assert all(store.pages_written == 10 for store in stores)


def test_pangu_mode_goes_through_block_server():
    cluster = build_cluster(6)
    deployment = PanguDeployment.build(cluster, block_hosts=[1],
                                       chunk_hosts=[2, 3, 4], replicas=3)
    deployment.establish_mesh()
    frontend = PolarDbFrontend(cluster, host_id=0, mode="pangu",
                               block_server_host=1)

    def scenario():
        completed = yield from frontend.run_pages(5)
        return completed

    assert run_process(cluster, scenario(), limit=30 * SECONDS) == 5
    # 5 pages × 3 chunk replicas.
    assert sum(cs.chunks_written for cs in deployment.chunk_servers) == 15


def test_native_mode_is_faster_than_pangu_mode():
    """One hop + 2 replicas beats two hops + 3 replicas."""
    cluster_a = build_cluster(4)
    for h in (1, 2):
        PolarStoreNode(cluster_a, h)
    native = PolarDbFrontend(cluster_a, host_id=0, mode="native",
                             store_hosts=[1, 2])
    run_process(cluster_a, native.run_pages(10), limit=30 * SECONDS)
    native_latency = mean(lat for _, lat in native.completions)

    cluster_b = build_cluster(6)
    deployment = PanguDeployment.build(cluster_b, block_hosts=[1],
                                       chunk_hosts=[2, 3, 4], replicas=3)
    deployment.establish_mesh()
    pangu = PolarDbFrontend(cluster_b, host_id=0, mode="pangu",
                            block_server_host=1)
    run_process(cluster_b, pangu.run_pages(10), limit=30 * SECONDS)
    pangu_latency = mean(lat for _, lat in pangu.completions)

    assert native_latency < pangu_latency


def test_profile_driven_load():
    cluster = build_cluster(3)
    PolarStoreNode(cluster, 1)
    PolarStoreNode(cluster, 2)
    frontend = PolarDbFrontend(cluster, host_id=0, mode="native",
                               store_hosts=[1, 2])
    profile = diurnal_profile(200 * MILLIS, 100 * MILLIS, low=200, high=2000)

    def scenario():
        yield from frontend.run_profile(profile, 200 * MILLIS)

    run_process(cluster, scenario(), limit=30 * SECONDS)
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)
    assert len(frontend.completions) > 20
    assert frontend.failures == 0


def test_mode_validation():
    cluster = build_cluster(2)
    with pytest.raises(ValueError, match="unknown PolarDB mode"):
        PolarDbFrontend(cluster, 0, mode="weird")
    with pytest.raises(ValueError, match="store_hosts"):
        PolarDbFrontend(cluster, 0, mode="native")
    with pytest.raises(ValueError, match="block_server_host"):
        PolarDbFrontend(cluster, 0, mode="pangu")
