"""Dual-port RNICs (Sec. VII: dual-port 25 Gbps CX4-Lx per machine)."""

from statistics import mean

import pytest

from repro.rnic import Opcode, WorkRequest
from repro.sim import MILLIS, SECONDS
from tests.conftest import build_cluster, establish, run_process


def _bulk_throughput(nic_ports: int, flows: int) -> float:
    """Aggregate Gbps of ``flows`` bulk WRITE streams from host 0."""
    cluster = build_cluster(1 + flows, nic_ports=nic_ports)
    sender = cluster.host(0)
    sim = cluster.sim
    size = 2 << 20
    conns = [establish(cluster, 0, dst + 1, service_port=7000)
             for dst in range(flows)]

    def stream(conn_c, conn_s, dst):
        host = cluster.host(dst + 1)
        buf = host.memory.alloc(size)
        mr = yield host.verbs.reg_mr(conn_s.qp.pd, buf.addr, buf.length)
        for _ in range(4):
            yield sender.verbs.post_send(conn_c.qp, WorkRequest(
                opcode=Opcode.WRITE, length=size, remote_addr=mr.addr,
                rkey=mr.rkey))
        done = 0
        while done < 4:
            done += len(conn_c.qp.send_cq.poll())
            yield sim.timeout(10_000)

    t0 = sim.now
    procs = [sim.spawn(stream(conn_c, conn_s, dst))
             for dst, (conn_c, conn_s) in enumerate(conns)]
    sim.run_until_event(sim.all_of(procs), limit=60 * SECONDS)
    total_bits = flows * 4 * size * 8
    return total_bits / (sim.now - t0)


def test_second_port_doubles_aggregate_bandwidth():
    single = _bulk_throughput(nic_ports=1, flows=4)
    dual = _bulk_throughput(nic_ports=2, flows=4)
    # Four flows hash over two ports: aggregate should rise well past one
    # link's worth (25 Gbps) toward two.
    assert single < 26.0
    assert dual > single * 1.5


def test_single_flow_stays_in_order_on_dual_port(cluster):
    cluster2 = build_cluster(2, nic_ports=2)
    conn_c, conn_s = establish(cluster2, 0, 1)
    client, server = cluster2.host(0), cluster2.host(1)

    def scenario():
        for _ in range(10):
            yield server.verbs.post_recv(conn_s.qp, WorkRequest(
                opcode=Opcode.RECV, length=4096))
        for index in range(10):
            yield client.verbs.post_send(conn_c.qp, WorkRequest(
                opcode=Opcode.SEND, length=100 + index, signaled=False))
        got = []
        while len(got) < 10:
            got.extend(conn_s.qp.recv_cq.poll())
            yield cluster2.sim.timeout(1000)
        return [c.byte_len for c in got]

    sizes = run_process(cluster2, scenario(), limit=10 * SECONDS)
    assert sizes == [100 + i for i in range(10)]


def test_pfc_gates_ports_independently():
    cluster = build_cluster(2, nic_ports=2)
    nic = cluster.host(0).nic
    assert len(nic.uplinks) == 2
    nic.pause_port(1, 0, True)
    assert not nic.uplinks[0].paused
    assert nic.uplinks[1].paused
    nic.pause_port(1, 0, False)
    assert not nic.uplinks[1].paused


def test_extra_port_requires_primary():
    cluster = build_cluster(2)
    from repro.net.hosts import SimpleHost
    stranger = SimpleHost(99)
    with pytest.raises(ValueError):
        cluster.topology.attach_extra_port(1, stranger, 1)
