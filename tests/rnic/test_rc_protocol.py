"""RC protocol behaviour: send/recv, one-sided ops, RNR, retransmission."""

import pytest

from repro.rnic import Opcode, WorkRequest, WrStatus
from repro.rnic.qp import QpStateError
from repro.sim import MICROS, MILLIS, SECONDS
from tests.conftest import Cluster, build_cluster, establish, run_process


@pytest.fixture
def pair(cluster):
    """An established client/server connection plus their hosts."""
    conn_c, conn_s = establish(cluster, 0, 1)
    return cluster, conn_c, conn_s


def _poll_until(cluster, cq, n=1, limit=2 * SECONDS):
    """Process: poll ``cq`` until ``n`` completions have arrived."""
    got = []

    def poller():
        while len(got) < n:
            got.extend(cq.poll())
            if len(got) >= n:
                break
            yield cluster.sim.timeout(1 * MICROS)
        return got

    return run_process(cluster, poller(), limit=limit)


def test_send_recv_roundtrip(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096, local_addr=0x9000))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=512, local_addr=0x1000))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_s.qp.recv_cq)
    assert completions[0].ok
    assert completions[0].opcode is Opcode.RECV
    assert completions[0].byte_len == 512
    assert completions[0].addr == 0x9000


def test_send_generates_sender_completion_on_ack(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=128))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq)
    assert completions[0].ok
    assert completions[0].opcode is Opcode.SEND


def test_send_imm_delivers_immediate(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND_IMM, length=64, imm_data=0xBEEF))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_s.qp.recv_cq)
    assert completions[0].imm_data == 0xBEEF
    assert completions[0].opcode is Opcode.RECV_IMM


def test_send_without_recv_raises_rnr_then_recovers(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def sender():
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=256))

    run_process(cluster, sender())
    # Let the first attempt hit the empty RQ.
    cluster.sim.run(until=cluster.sim.now + 50 * MICROS)
    assert cluster.stats.rnr_naks >= 1

    def late_recv():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096))

    run_process(cluster, late_recv())
    completions = _poll_until(cluster, conn_s.qp.recv_cq)
    assert completions[0].ok
    assert completions[0].byte_len == 256
    # Sender eventually completes too.
    sends = _poll_until(cluster, conn_c.qp.send_cq)
    assert sends[0].ok


def test_rnr_retries_exceeded_moves_qp_to_error(pair):
    cluster, conn_c, conn_s = pair
    client = cluster.host(0)

    def sender():
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=256))

    run_process(cluster, sender())
    completions = _poll_until(cluster, conn_c.qp.send_cq, limit=30 * SECONDS)
    assert completions[0].status is WrStatus.RNR_RETRY_EXCEEDED
    from repro.rnic import QpState
    assert conn_c.qp.state is QpState.ERROR


def test_write_completes_silently_at_receiver(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        buf = server.memory.alloc(8192)
        mr = yield server.verbs.reg_mr(conn_s.qp.pd, buf.addr, buf.length)
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.WRITE, length=4096, remote_addr=mr.addr,
            rkey=mr.rkey))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq)
    assert completions[0].ok
    assert len(conn_s.qp.recv_cq) == 0  # memory semantics: no receiver CQE


def test_write_imm_consumes_recv_and_notifies(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        buf = server.memory.alloc(8192)
        mr = yield server.verbs.reg_mr(conn_s.qp.pd, buf.addr, buf.length)
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=8192))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.WRITE_IMM, length=1024, remote_addr=mr.addr,
            rkey=mr.rkey, imm_data=42))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_s.qp.recv_cq)
    assert completions[0].imm_data == 42
    assert completions[0].byte_len == 1024


def test_write_with_bad_rkey_is_fatal(pair):
    cluster, conn_c, conn_s = pair
    client = cluster.host(0)

    def scenario():
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.WRITE, length=1024, remote_addr=0xDEAD,
            rkey=0x666))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq)
    assert completions[0].status is WrStatus.REMOTE_ACCESS_ERROR


def test_write_out_of_bounds_is_fatal(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        buf = server.memory.alloc(4096)
        mr = yield server.verbs.reg_mr(conn_s.qp.pd, buf.addr, buf.length)
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.WRITE, length=8192, remote_addr=mr.addr,
            rkey=mr.rkey))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq)
    assert completions[0].status is WrStatus.REMOTE_ACCESS_ERROR


def test_read_fetches_remote_data(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        buf = server.memory.alloc(1 << 20)
        mr = yield server.verbs.reg_mr(conn_s.qp.pd, buf.addr, buf.length)
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.READ, length=64 * 1024, remote_addr=mr.addr,
            rkey=mr.rkey))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq)
    assert completions[0].ok
    assert completions[0].opcode is Opcode.READ
    assert completions[0].byte_len == 64 * 1024


def test_read_with_bad_rkey_fails_quietly_for_receiver(pair):
    cluster, conn_c, conn_s = pair
    client = cluster.host(0)

    def scenario():
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.READ, length=4096, remote_addr=0xDEAD, rkey=0x99))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq)
    assert completions[0].status is WrStatus.REMOTE_ACCESS_ERROR


def test_zero_byte_write_needs_no_rkey_or_recv(pair):
    """The keepAlive probe: zero-payload WRITE, ACKed by hardware alone."""
    cluster, conn_c, conn_s = pair
    client = cluster.host(0)

    def scenario():
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.WRITE, length=0, remote_addr=0, rkey=1))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq)
    assert completions[0].ok
    assert cluster.stats.rnr_naks == 0


def test_large_message_fragments_and_reassembles(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)
    size = 300 * 1024  # 75 MTU-sized fragments

    def scenario():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=size))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=size))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_s.qp.recv_cq)
    assert completions[0].byte_len == size
    # 75 fragments consumed 75 PSNs.
    assert conn_c.qp.send_psn == -(-size // cluster.params.mtu_bytes)


def test_crashed_peer_causes_retry_exceeded(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)
    server.nic.crash()

    def scenario():
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=128))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_c.qp.send_cq, limit=60 * SECONDS)
    assert completions[0].status is WrStatus.RETRY_EXCEEDED
    assert cluster.stats.retransmissions > 0


def test_sq_depth_limit_enforced(pair):
    cluster, conn_c, conn_s = pair
    qp = conn_c.qp
    qp.sq_depth = 4
    for _ in range(4):
        qp.post_send(WorkRequest(opcode=Opcode.SEND, length=8))
    with pytest.raises(QpStateError):
        qp.post_send(WorkRequest(opcode=Opcode.SEND, length=8))


def test_rq_depth_limit_enforced(pair):
    cluster, conn_c, conn_s = pair
    qp = conn_s.qp
    qp.rq_depth = 2
    qp.post_recv(WorkRequest(opcode=Opcode.RECV, length=64))
    qp.post_recv(WorkRequest(opcode=Opcode.RECV, length=64))
    with pytest.raises(QpStateError):
        qp.post_recv(WorkRequest(opcode=Opcode.RECV, length=64))


def test_multiple_messages_complete_in_order(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        for _ in range(8):
            yield server.verbs.post_recv(conn_s.qp, WorkRequest(
                opcode=Opcode.RECV, length=4096))
        for i in range(8):
            yield client.verbs.post_send(conn_c.qp, WorkRequest(
                opcode=Opcode.SEND, length=100 + i))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_s.qp.recv_cq, n=8)
    assert [c.byte_len for c in completions] == [100 + i for i in range(8)]


def test_unsignaled_send_generates_no_cqe(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=64, signaled=False))

    run_process(cluster, scenario())
    _poll_until(cluster, conn_s.qp.recv_cq)  # receiver still completes
    cluster.sim.run(until=cluster.sim.now + 1 * MILLIS)
    assert len(conn_c.qp.send_cq) == 0


def test_qp_cache_records_hits_and_misses(pair):
    cluster, conn_c, conn_s = pair
    client, server = cluster.host(0), cluster.host(1)

    def scenario():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=64))
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096))
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=64))

    run_process(cluster, scenario())
    _poll_until(cluster, conn_s.qp.recv_cq, n=2)
    assert client.nic.cache_misses >= 1
    assert client.nic.cache_hits >= 1


def test_loopback_to_same_host(cluster):
    conn_a, conn_b = establish(cluster, 0, 0)
    host = cluster.host(0)

    def scenario():
        yield host.verbs.post_recv(conn_b.qp, WorkRequest(
            opcode=Opcode.RECV, length=4096))
        yield host.verbs.post_send(conn_a.qp, WorkRequest(
            opcode=Opcode.SEND, length=333))

    run_process(cluster, scenario())
    completions = _poll_until(cluster, conn_b.qp.recv_cq)
    assert completions[0].byte_len == 333
