"""NIC engine behaviour: WQE-atomic head-of-line blocking, SRQ, QP cache."""

from statistics import mean

import pytest

from repro.rnic import Opcode, QpState, WorkRequest
from repro.rnic.qp import QpStateError, SharedReceiveQueue
from repro.sim import MICROS, MILLIS, SECONDS, SimParams
from tests.conftest import build_cluster, establish, run_process


def _small_latency(cluster, conn_c, conn_s, background=None):
    """One 64 B send's delivery latency, optionally behind background."""
    client, server = cluster.host(0), cluster.host(1)
    sim = cluster.sim

    def scenario():
        yield server.verbs.post_recv(conn_s.qp, WorkRequest(
            opcode=Opcode.RECV, length=256))
        if background is not None:
            yield from background()
        t0 = sim.now
        yield client.verbs.post_send(conn_c.qp, WorkRequest(
            opcode=Opcode.SEND, length=64, signaled=False))
        while not conn_s.qp.recv_cq.poll(1):
            yield sim.timeout(200)
        return sim.now - t0

    return run_process(cluster, scenario(), limit=10 * SECONDS)


def test_large_wqe_blocks_small_message_on_other_qp():
    """The Sec. V-C motivation: a big WRITE occupies the engine and the
    uplink, delaying unrelated traffic — fragmentation's whole point."""
    cluster = build_cluster(3)
    conn_c, conn_s = establish(cluster, 0, 1, service_port=7000)
    alone = _small_latency(cluster, conn_c, conn_s)

    cluster2 = build_cluster(3)
    conn2_c, conn2_s = establish(cluster2, 0, 1, service_port=7000)
    bulk_c, bulk_s = establish(cluster2, 0, 2, service_port=7001)
    host0 = cluster2.host(0)
    host2 = cluster2.host(2)

    def background():
        buf = host2.memory.alloc(4 << 20)
        mr = yield host2.verbs.reg_mr(bulk_s.qp.pd, buf.addr, buf.length)
        yield host0.verbs.post_send(bulk_c.qp, WorkRequest(
            opcode=Opcode.WRITE, length=4 << 20, remote_addr=mr.addr,
            rkey=mr.rkey, signaled=False))

    behind_bulk = _small_latency(cluster2, conn2_c, conn2_s,
                                 background=background)
    # The 4 MB WQE (≈1000 segments) must delay the small message by far
    # more than its standalone latency.
    assert behind_bulk > 3 * alone


def test_srq_shared_across_qps(cluster):
    conn_a, srv_a = establish(cluster, 0, 1, service_port=7100)
    conn_b, srv_b = establish(cluster, 2, 1, service_port=7101)
    server = cluster.host(1)
    srq = SharedReceiveQueue(depth=8)
    # Rewire both server QPs onto the shared queue.
    srv_a.qp.srq = srq
    srv_b.qp.srq = srq
    for _ in range(4):
        srq.post(WorkRequest(opcode=Opcode.RECV, length=4096))

    def scenario():
        yield cluster.host(0).verbs.post_send(conn_a.qp, WorkRequest(
            opcode=Opcode.SEND, length=100, signaled=False))
        yield cluster.host(2).verbs.post_send(conn_b.qp, WorkRequest(
            opcode=Opcode.SEND, length=200, signaled=False))
        while len(srq) > 2:
            yield cluster.sim.timeout(1 * MICROS)
        return len(srq)

    remaining = run_process(cluster, scenario(), limit=5 * SECONDS)
    assert remaining == 2     # both QPs consumed from the one pool


def test_srq_depth_enforced():
    srq = SharedReceiveQueue(depth=2)
    srq.post(WorkRequest(opcode=Opcode.RECV, length=64))
    srq.post(WorkRequest(opcode=Opcode.RECV, length=64))
    with pytest.raises(QpStateError):
        srq.post(WorkRequest(opcode=Opcode.RECV, length=64))


def test_post_recv_on_srq_qp_rejected(cluster):
    server = cluster.host(1)
    srq = SharedReceiveQueue(depth=8)
    conn_c, conn_s = establish(cluster, 0, 1)
    conn_s.qp.srq = srq
    with pytest.raises(QpStateError, match="SRQ"):
        conn_s.qp.post_recv(WorkRequest(opcode=Opcode.RECV, length=64))


def test_qp_cache_evicts_lru():
    params = SimParams(nic_qp_cache_entries=2)
    cluster = build_cluster(2, params=params)
    nic = cluster.host(0).nic
    assert nic._qp_cache_access(1) > 0     # miss
    assert nic._qp_cache_access(2) > 0     # miss
    assert nic._qp_cache_access(1) == 0    # hit
    assert nic._qp_cache_access(3) > 0     # miss, evicts 2 (LRU)
    assert nic._qp_cache_access(2) > 0     # miss again
    assert nic.cache_hits == 1
    assert nic.cache_misses == 4


def test_illegal_qp_transition_rejected(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    with pytest.raises(QpStateError):
        conn_c.qp.transition(QpState.INIT)   # RTS → INIT is illegal


def test_qp_reset_from_any_state(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    conn_c.qp.reset()
    assert conn_c.qp.state is QpState.RESET
    assert conn_c.qp.send_psn == 0
