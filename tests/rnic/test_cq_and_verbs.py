"""CQ semantics and verbs lifecycle paths not covered elsewhere."""

import pytest

from repro.rnic import AccessFlags, Opcode, WorkRequest, WrStatus
from repro.rnic.cq import CompletionQueue, CqOverflow
from repro.rnic.wqe import Completion
from repro.sim import SECONDS, Simulator
from tests.conftest import establish, run_process


def _cqe(wr_id=1):
    return Completion(wr_id=wr_id, status=WrStatus.SUCCESS,
                      opcode=Opcode.SEND, qp_num=1)


def test_cq_poll_drains_fifo():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=8)
    for wr_id in range(5):
        cq.push(_cqe(wr_id))
    assert [c.wr_id for c in cq.poll(3)] == [0, 1, 2]
    assert [c.wr_id for c in cq.poll(10)] == [3, 4]
    assert cq.poll() == []
    assert cq.total_completions == 5


def test_cq_overflow_is_fatal():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=2)
    cq.push(_cqe())
    cq.push(_cqe())
    with pytest.raises(CqOverflow):
        cq.push(_cqe())


def test_cq_notify_fires_on_next_completion():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=8)
    fired = []
    cq.request_notify(lambda: fired.append("a"))
    assert fired == []
    cq.push(_cqe())
    assert fired == ["a"]
    cq.push(_cqe())          # notify is one-shot
    assert fired == ["a"]


def test_cq_notify_with_pending_entries_fires_immediately():
    sim = Simulator()
    cq = CompletionQueue(sim, depth=8)
    cq.push(_cqe())
    fired = []
    cq.request_notify(lambda: fired.append("now"))
    assert fired == ["now"]


def test_cq_depth_validation():
    with pytest.raises(ValueError):
        CompletionQueue(Simulator(), depth=0)


def test_dereg_mr_removes_from_nic(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    buf = host.memory.alloc(8192)

    def scenario():
        mr = yield host.verbs.reg_mr(pd, buf.addr, buf.length)
        assert host.nic.mr_table.check(mr.rkey, mr.addr, 4096,
                                       write=True) is not None
        yield host.verbs.dereg_mr(pd, mr)
        return mr

    mr = run_process(cluster, scenario(), limit=SECONDS)
    assert host.nic.mr_table.check(mr.rkey, mr.addr, 4096, write=True) is None
    assert mr.lkey not in pd.mrs


def test_mr_access_flags_enforced(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    buf = host.memory.alloc(8192)

    def scenario():
        mr = yield host.verbs.reg_mr(pd, buf.addr, buf.length,
                                     AccessFlags.REMOTE_READ)
        return mr

    mr = run_process(cluster, scenario(), limit=SECONDS)
    assert host.nic.mr_table.check(mr.rkey, mr.addr, 64, write=False)
    assert host.nic.mr_table.check(mr.rkey, mr.addr, 64, write=True) is None


def test_destroy_qp_unregisters(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    host = cluster.host(0)
    qpn = conn_c.qp.qpn
    assert qpn in host.nic.qps

    def scenario():
        yield host.verbs.destroy_qp(conn_c.qp)

    run_process(cluster, scenario(), limit=SECONDS)
    assert qpn not in host.nic.qps


def test_mr_registration_cost_scales_with_size(cluster):
    host = cluster.host(0)
    params = cluster.params
    assert params.mr_register_ns(4 << 20) > params.mr_register_ns(4096)
    # 4 MB MR ≈ base + 1024 pages of translate/pin work.
    expected = params.mr_register_base_ns + 1024 * params.mr_register_per_page_ns
    assert params.mr_register_ns(4 << 20) == expected
