"""DCT: dynamically connected transport (Sec. IX evaluation)."""

import pytest

from repro.rnic import Opcode, WorkRequest
from repro.sim import MICROS, MILLIS, SECONDS
from tests.conftest import build_cluster, run_process


@pytest.fixture
def dc_setup():
    """One initiator host, three target hosts with DC targets + SRQs."""
    cluster = build_cluster(4)
    sender = cluster.host(0)
    pd = sender.verbs.alloc_pd()
    send_cq = sender.verbs.create_cq()
    dci = sender.verbs.create_dc_initiator(pd, send_cq)

    targets = {}
    for host_id in (1, 2, 3):
        host = cluster.host(host_id)
        t_pd = host.verbs.alloc_pd()
        t_cq = host.verbs.create_cq()
        srq = host.verbs.create_srq(depth=64)
        for _ in range(32):
            srq.post(WorkRequest(opcode=Opcode.RECV, length=8192))
        targets[host_id] = host.verbs.create_dc_target(t_pd, t_cq, srq)
    return cluster, dci, targets


def _drain(cluster, target, n, limit=5 * SECONDS):
    def poller():
        got = []
        while len(got) < n:
            got.extend(target.recv_cq.poll())
            yield cluster.sim.timeout(1 * MICROS)
        return got
    return run_process(cluster, poller(), limit=limit)


def test_dc_send_reaches_target(dc_setup):
    cluster, dci, targets = dc_setup
    dci.post_send(1, targets[1].dct_num,
                  WorkRequest(opcode=Opcode.SEND, length=512, signaled=False))
    completions = _drain(cluster, targets[1], 1)
    assert completions[0].byte_len == 512


def test_one_initiator_many_targets(dc_setup):
    cluster, dci, targets = dc_setup
    for host_id, target in targets.items():
        for _ in range(4):
            dci.post_send(host_id, target.dct_num, WorkRequest(
                opcode=Opcode.SEND, length=100 + host_id, signaled=False))
    for host_id, target in targets.items():
        completions = _drain(cluster, target, 4)
        assert all(c.byte_len == 100 + host_id for c in completions)
    # One DCI session per target — not one QP per connection.
    assert dci.session_count == 3
    assert dci.connects == 3


def test_retargeting_counts_switches(dc_setup):
    cluster, dci, targets = dc_setup
    # Alternate targets: every message forces a drain + switch.
    for i in range(6):
        host_id = 1 + (i % 2)
        dci.post_send(host_id, targets[host_id].dct_num, WorkRequest(
            opcode=Opcode.SEND, length=64, signaled=False))
    _drain(cluster, targets[1], 3)
    _drain(cluster, targets[2], 3)
    assert dci.switches >= 4


def test_sticky_target_avoids_switches(dc_setup):
    cluster, dci, targets = dc_setup
    for _ in range(6):
        dci.post_send(1, targets[1].dct_num, WorkRequest(
            opcode=Opcode.SEND, length=64, signaled=False))
    _drain(cluster, targets[1], 6)
    assert dci.switches == 0


def test_dc_establishment_is_inband_and_cheap(dc_setup):
    """First contact costs µs, not the ~4 ms of CM + create_qp."""
    cluster, dci, targets = dc_setup
    t0 = cluster.sim.now
    dci.post_send(1, targets[1].dct_num, WorkRequest(
        opcode=Opcode.SEND, length=64, signaled=False))
    _drain(cluster, targets[1], 1)
    first_contact_ns = cluster.sim.now - t0
    assert first_contact_ns < 100 * MICROS


def test_dc_target_sessions_demux_per_initiator():
    cluster = build_cluster(3)
    receivers = {}
    host = cluster.host(2)
    t_pd = host.verbs.alloc_pd()
    t_cq = host.verbs.create_cq()
    srq = host.verbs.create_srq(depth=64)
    for _ in range(32):
        srq.post(WorkRequest(opcode=Opcode.RECV, length=8192))
    target = host.verbs.create_dc_target(t_pd, t_cq, srq)

    for sender_id in (0, 1):
        sender = cluster.host(sender_id)
        pd = sender.verbs.alloc_pd()
        cq = sender.verbs.create_cq()
        dci = sender.verbs.create_dc_initiator(pd, cq)
        dci.post_send(2, target.dct_num, WorkRequest(
            opcode=Opcode.SEND, length=300 + sender_id, signaled=False))

    def poller():
        got = []
        while len(got) < 2:
            got.extend(t_cq.poll())
            yield cluster.sim.timeout(1 * MICROS)
        return got

    completions = run_process(cluster, poller(), limit=5 * SECONDS)
    assert sorted(c.byte_len for c in completions) == [300, 301]
    assert target.session_count == 2
