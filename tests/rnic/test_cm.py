"""Connection-manager behaviour: handshake, costs, rejection, disconnect."""

import pytest

from repro.rnic import QpState, WorkRequest, Opcode, WrStatus
from repro.sim import MICROS, MILLIS, SECONDS
from repro.verbs import ConnectError
from tests.conftest import build_cluster, establish, run_process


def test_connect_accept_yields_established_qps(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    assert conn_c.qp.state is QpState.RTS
    assert conn_s.qp.state is QpState.RTS
    assert conn_c.qp.remote_qpn == conn_s.qp.qpn
    assert conn_s.qp.remote_qpn == conn_c.qp.qpn
    assert conn_c.remote_host == 1
    assert conn_s.remote_host == 0


def test_private_data_flows_both_ways(cluster):
    server = cluster.host(1)
    client = cluster.host(0)
    s_pd = server.verbs.alloc_pd()
    s_cq = server.verbs.create_cq()
    listener = server.cm.listen(7000, s_pd, s_cq, s_cq,
                                private_data={"srv": "meta"})
    c_pd = client.verbs.alloc_pd()
    c_cq = client.verbs.create_cq()

    def connector():
        conn = yield from client.cm.connect(
            1, 7000, c_pd, c_cq, c_cq, private_data={"cli": 7})
        server_conn = yield listener.accepted.get()
        return conn, server_conn

    conn, server_conn = run_process(cluster, connector())
    assert conn.private_data == {"srv": "meta"}
    assert server_conn.private_data == {"cli": 7}


def test_establishment_cost_is_milliseconds(cluster):
    t0 = cluster.sim.now
    establish(cluster, 0, 1)
    elapsed_us = (cluster.sim.now - t0) / 1000
    # Paper (Sec. VII-C): ≈3946 µs without the QP cache.
    assert 2500 < elapsed_us < 5500


def test_recycled_qp_cuts_establishment_time(cluster):
    client, server = cluster.host(0), cluster.host(1)
    c_pd = client.verbs.alloc_pd()
    c_cq = client.verbs.create_cq()
    s_pd = server.verbs.alloc_pd()
    s_cq = server.verbs.create_cq()
    listener = server.cm.listen(7000, s_pd, s_cq, s_cq)

    # Warm path: create a QP up front, reset it, then connect with it.
    def prepare():
        qp = yield client.verbs.create_qp(c_pd, c_cq, c_cq)
        qp.reset()
        return qp

    recycled = run_process(cluster, prepare())

    t0 = cluster.sim.now

    def fresh_connect():
        conn = yield from client.cm.connect(1, 7000, c_pd, c_cq, c_cq)
        yield listener.accepted.get()
        return conn

    run_process(cluster, fresh_connect())
    fresh_cost = cluster.sim.now - t0

    t1 = cluster.sim.now

    def cached_connect():
        conn = yield from client.cm.connect(1, 7001, c_pd, c_cq, c_cq,
                                            qp=recycled)
        return conn

    listener2 = server.cm.listen(7001, s_pd, s_cq, s_cq)
    run_process(cluster, cached_connect())
    cached_cost = cluster.sim.now - t1
    assert cached_cost < fresh_cost
    # The QP-create (~900 µs) is the dominant saving.
    assert fresh_cost - cached_cost > 500 * MICROS


def test_connect_unlistened_port_rejected(cluster):
    client = cluster.host(0)
    c_pd = client.verbs.alloc_pd()
    c_cq = client.verbs.create_cq()

    def connector():
        yield from client.cm.connect(1, 9999, c_pd, c_cq, c_cq)

    with pytest.raises(ConnectError, match="rejected"):
        run_process(cluster, connector())


def test_connect_to_crashed_host_times_out(cluster):
    cluster.host(1).nic.crash()
    client = cluster.host(0)
    c_pd = client.verbs.alloc_pd()
    c_cq = client.verbs.create_cq()

    def connector():
        yield from client.cm.connect(1, 7000, c_pd, c_cq, c_cq,
                                     timeout_ns=50 * MILLIS)

    with pytest.raises(ConnectError, match="timed out"):
        run_process(cluster, connector())


def test_duplicate_listen_rejected(cluster):
    server = cluster.host(1)
    pd = server.verbs.alloc_pd()
    cq = server.verbs.create_cq()
    server.cm.listen(7000, pd, cq, cq)
    with pytest.raises(ValueError):
        server.cm.listen(7000, pd, cq, cq)


def test_disconnect_notifies_peer_and_flushes(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    client, server = cluster.host(0), cluster.host(1)
    notified = []
    conn_s.on_disconnect = lambda conn: notified.append(conn.conn_id)

    # Server has a pending recv that must be flushed on disconnect.
    conn_s.qp.post_recv(WorkRequest(opcode=Opcode.RECV, length=64))
    client.cm.disconnect(conn_c)
    cluster.sim.run(until=cluster.sim.now + 10 * MILLIS)

    assert notified == [conn_s.conn_id]
    assert conn_c.qp.state is QpState.ERROR
    assert conn_s.qp.state is QpState.ERROR
    flushed = conn_s.qp.recv_cq.poll()
    assert flushed and flushed[0].status is WrStatus.WR_FLUSH_ERROR


def test_disconnect_is_idempotent(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    client = cluster.host(0)
    client.cm.disconnect(conn_c)
    client.cm.disconnect(conn_c)  # second call is a no-op
    cluster.sim.run(until=cluster.sim.now + 10 * MILLIS)


def test_many_connections_one_listener(cluster):
    server = cluster.host(3)
    s_pd = server.verbs.alloc_pd()
    s_cq = server.verbs.create_cq()
    listener = server.cm.listen(7000, s_pd, s_cq, s_cq)
    conns = []

    def connector(client_id):
        client = cluster.host(client_id)
        pd = client.verbs.alloc_pd()
        cq = client.verbs.create_cq()
        conn = yield from client.cm.connect(3, 7000, pd, cq, cq)
        conns.append(conn)

    for cid in (0, 1, 2):
        cluster.sim.spawn(connector(cid))
    cluster.sim.run(until=cluster.sim.now + 1 * SECONDS)
    assert len(conns) == 3
    assert len(listener.accepted.items) == 3
    assert server.cm.established == 3
