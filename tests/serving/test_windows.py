"""The stable-window measurement engine."""

import pytest

from repro.serving.windows import SloTarget, WindowedRecorder

MS = 1_000_000


def _loaded_recorder():
    """4 planned windows, steady 3-per-window traffic, 10us latencies."""
    rec = WindowedRecorder(window_ns=10 * MS)
    for w in range(4):
        for i in range(3):
            at = w * 10 * MS + i * MS
            rec.on_offered(at)
            rec.on_completed(at + 10_000, 10_000)
    rec.close(40 * MS)
    return rec


def test_window_indexing_and_counts():
    rec = _loaded_recorder()
    assert rec.n_windows == 4
    assert rec.stable_indices() == [1, 2]
    assert rec.total_offered == rec.total_completed == 12
    rows = rec.rows()
    assert [row["window"] for row in rows] == [0, 1, 2, 3]
    assert [row["stable"] for row in rows] == [False, True, True, False]
    assert all(row["offered"] == row["completed"] == 3 for row in rows)


def test_warmup_cooldown_excluded_from_summary():
    rec = _loaded_recorder()
    summary = rec.summary(SloTarget(latency_us=100.0))
    assert summary["windows_stable"] == 2
    assert summary["offered"] == 6          # not 12: edges excluded
    assert summary["slo_ok"] == 1
    assert summary["slo_attainment"] == 1.0


def test_slo_failure_in_one_stable_window():
    rec = WindowedRecorder(window_ns=10 * MS)
    for w in range(4):
        latency = 5_000_000 if w == 2 else 10_000   # window 2: 5ms spike
        rec.on_offered(w * 10 * MS)
        rec.on_completed(w * 10 * MS + latency, latency)
    rec.close(40 * MS)
    summary = rec.summary(SloTarget(latency_us=100.0))
    assert summary["slo_ok"] == 0
    assert summary["slo_attainment"] == 0.5
    rows = rec.rows(SloTarget(latency_us=100.0))
    assert rows[2]["slo_ok"] is False
    assert rows[1]["slo_ok"] is True


def test_offered_vs_achieved_gap_visible_per_window():
    rec = WindowedRecorder(window_ns=10 * MS, warmup_windows=0,
                           cooldown_windows=0)
    for i in range(10):
        rec.on_offered(i * MS)              # all offered in window 0
    rec.on_completed(5 * MS, 100_000)       # only one completes there
    rec.close(20 * MS)
    rows = rec.rows()
    assert rows[0]["offered"] == 10
    assert rows[0]["completed"] == 1
    assert rows[0]["offered_rps"] > rows[0]["achieved_rps"]


def test_throughput_floor_fails_a_slow_window():
    rec = WindowedRecorder(window_ns=10 * MS, warmup_windows=0,
                           cooldown_windows=0)
    rec.on_offered(1 * MS)
    rec.on_completed(2 * MS, 10_000)
    rec.close(10 * MS)
    fast_enough = rec.summary(SloTarget(latency_us=100.0))
    assert fast_enough["slo_ok"] == 1
    floor = rec.summary(SloTarget(latency_us=100.0,
                                  min_achieved_rps=1_000.0))
    assert floor["slo_ok"] == 0             # 100 rps < 1000 rps floor


def test_idle_stable_windows_are_vacuously_ok():
    rec = WindowedRecorder(window_ns=10 * MS, warmup_windows=0,
                           cooldown_windows=0)
    rec.on_offered(1 * MS)
    rec.on_completed(2 * MS, 10_000)
    rec.close(40 * MS)                      # windows 1..3 fully idle
    summary = rec.summary(SloTarget(latency_us=100.0))
    assert summary["slo_ok"] == 1
    assert summary["slo_attainment"] == 1.0
    rows = rec.rows(SloTarget(latency_us=100.0))
    assert all(row["slo_ok"] for row in rows)


def test_stragglers_extend_rows_but_not_stable_set():
    rec = _loaded_recorder()
    rec.on_completed(55 * MS, 1_000)        # lands past the horizon
    rows = rec.rows()
    assert rows[-1]["window"] == 5
    assert rows[-1]["stable"] is False
    assert rec.stable_indices() == [1, 2]


def test_digest_covers_latency_values():
    a = _loaded_recorder()
    b = _loaded_recorder()
    assert a.digest() == b.digest()
    b.on_completed(15 * MS, 10_001)         # one extra latency value
    assert a.digest() != b.digest()


def test_validation():
    with pytest.raises(ValueError):
        WindowedRecorder(window_ns=0)
    with pytest.raises(ValueError):
        WindowedRecorder(window_ns=1, warmup_windows=-1)
    rec = WindowedRecorder(window_ns=10 * MS)
    with pytest.raises(ValueError):
        rec.on_completed(0, -5)
    with pytest.raises(ValueError):
        rec.close(0)
