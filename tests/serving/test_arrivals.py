"""XR-Serve arrival processes: determinism, rates, burst structure."""

import pytest

from repro.serving.arrivals import (DiurnalArrivals, MmppArrivals,
                                    PoissonArrivals, make_arrivals)
from repro.sim import MILLIS, RngRegistry, SECONDS


def _stream(seed=0, name="arrivals"):
    return RngRegistry(seed).stream(name)


def test_poisson_schedule_deterministic():
    a = PoissonArrivals(_stream(), rate_per_s=10_000)
    b = PoissonArrivals(_stream(), rate_per_s=10_000)
    assert a.schedule(50 * MILLIS) == b.schedule(50 * MILLIS)
    assert a.arrivals == b.arrivals > 0


def test_poisson_rate_roughly_matches():
    proc = PoissonArrivals(_stream(3), rate_per_s=20_000)
    times = proc.schedule(SECONDS)
    assert len(times) == pytest.approx(20_000, rel=0.1)


def test_poisson_different_seed_different_schedule():
    a = PoissonArrivals(_stream(0), rate_per_s=10_000)
    b = PoissonArrivals(_stream(1), rate_per_s=10_000)
    assert a.schedule(50 * MILLIS) != b.schedule(50 * MILLIS)


def test_mmpp_bursts_raise_rate_and_flip_states():
    base = 5_000
    proc = MmppArrivals(_stream(2), rate_per_s=base,
                        burst_rate_per_s=8 * base,
                        mean_base_ns=20 * MILLIS, mean_burst_ns=10 * MILLIS)
    times = proc.schedule(SECONDS)
    assert proc.state_flips > 2, "never entered a burst"
    # Overall rate sits strictly between base and burst rate.
    assert base * 1.1 < len(times) < 8 * base


def test_mmpp_deterministic():
    def build():
        return MmppArrivals(_stream(9), rate_per_s=5_000,
                            burst_rate_per_s=40_000,
                            mean_base_ns=5 * MILLIS,
                            mean_burst_ns=2 * MILLIS)
    assert build().schedule(100 * MILLIS) == build().schedule(100 * MILLIS)


def test_diurnal_follows_envelope():
    # Rate 2k in the first half, 20k in the second: arrival counts
    # should differ by roughly the envelope ratio.
    knots = [(0, 2_000.0), (500 * MILLIS, 20_000.0)]
    proc = DiurnalArrivals(_stream(4), knots)
    times = proc.schedule(SECONDS)
    early = sum(1 for t in times if t < 500 * MILLIS)
    late = len(times) - early
    assert late > 5 * early


def test_make_arrivals_kinds_and_validation():
    for kind in ("poisson", "mmpp", "diurnal"):
        proc = make_arrivals(kind, _stream(1), 10_000,
                             duration_ns=100 * MILLIS)
        assert proc.schedule(20 * MILLIS)
    with pytest.raises(ValueError):
        make_arrivals("sawtooth", _stream(1), 10_000)
    with pytest.raises(ValueError):
        make_arrivals("poisson", _stream(1), 0)


def test_gaps_are_positive_integers():
    proc = PoissonArrivals(_stream(8), rate_per_s=500_000)
    gaps = [proc.next_gap_ns(0) for _ in range(500)]
    assert all(isinstance(g, int) and g >= 1 for g in gaps)
