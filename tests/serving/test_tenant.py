"""Tenants and the serving harness over a real simulated cluster."""

import pytest

from repro.cluster import build_cluster
from repro.serving import (BULK_CLASS, RPC_CLASS, ServingHarness, SloTarget,
                           Tenant, TenantSpec, TrafficClass)
from repro.sim import MILLIS, RngRegistry


def _harness(seed=0, n_hosts=5, duration_ms=30, window_ms=10):
    cluster = build_cluster(n_hosts, seed=seed)
    return ServingHarness(cluster, duration_ns=duration_ms * MILLIS,
                          window_ns=window_ms * MILLIS)


def _rpc_spec(**overrides):
    base = dict(name="t", hosts=(0,), server_host=4, rate_per_s=4_000.0,
                classes=(RPC_CLASS,), n_channels=2)
    base.update(overrides)
    return TenantSpec(**base)


def test_single_tenant_open_loop_round_trip():
    harness = _harness()
    tenant = harness.add_tenant(_rpc_spec())
    harness.run()
    summary = tenant.summary()
    assert summary["offered"] > 0
    assert summary["completed"] > 0
    assert summary["errors"] == 0
    assert summary["outstanding"] == 0          # drain completed everything
    assert summary["p99_us"] > 0


def test_same_seed_identical_window_digests():
    digests = []
    for _ in range(2):
        harness = _harness(seed=21)
        tenant = harness.add_tenant(_rpc_spec())
        harness.run()
        digests.append(tenant.recorder.digest())
    assert digests[0] == digests[1]


def test_different_seed_different_digest():
    results = []
    for seed in (0, 1):
        harness = _harness(seed=seed)
        tenant = harness.add_tenant(_rpc_spec())
        harness.run()
        results.append(tenant.recorder.digest())
    assert results[0] != results[1]


def test_two_tenants_shared_server_host():
    harness = _harness(n_hosts=5)
    a = harness.add_tenant(_rpc_spec(name="a", hosts=(0, 1)))
    b = harness.add_tenant(_rpc_spec(name="b", hosts=(2,)))
    assert len(harness.servers) == 1            # one shared serving context
    harness.run()
    assert a.summary()["completed"] > 0
    assert b.summary()["completed"] > 0
    rows = harness.window_rows()
    assert {row["tenant"] for row in rows} == {"a", "b"}


def test_mixed_classes_route_and_complete():
    classes = (TrafficClass(name="rpc", weight=0.7,
                            size_fn=RPC_CLASS.size_fn),
               TrafficClass(name="bulk", weight=0.3,
                            size_fn=BULK_CLASS.size_fn))
    harness = _harness()
    tenant = harness.add_tenant(_rpc_spec(classes=classes, n_channels=4,
                                          policy="sharded"))
    harness.run()
    summary = tenant.summary()
    assert summary["sent_rpc"] > summary["sent_bulk"] > 0
    assert summary["p99_bulk_us"] > summary["p99_rpc_us"]


def test_sharded_partitions_channels_per_class():
    harness = _harness()
    classes = (RPC_CLASS, BULK_CLASS)
    tenant = harness.add_tenant(_rpc_spec(classes=classes, n_channels=4,
                                          policy="sharded"))
    harness.run()
    channels = tenant._channels[0]
    assert len(channels) == 4
    shard_rpc = [tenant._select_channel(0, 0) for _ in range(8)]
    shard_bulk = [tenant._select_channel(0, 1) for _ in range(8)]
    assert set(shard_rpc).isdisjoint(set(shard_bulk))
    assert set(shard_rpc) | set(shard_bulk) == set(channels)


def test_round_robin_cycles_all_channels():
    harness = _harness()
    tenant = harness.add_tenant(_rpc_spec(n_channels=3))
    harness.run()
    picks = [tenant._select_channel(0, 0) for _ in range(6)]
    assert set(picks) == set(tenant._channels[0])


def test_spec_validation():
    with pytest.raises(ValueError):
        _rpc_spec(hosts=())
    with pytest.raises(ValueError):
        _rpc_spec(hosts=(4,))                   # source == server
    with pytest.raises(ValueError):
        _rpc_spec(classes=())
    with pytest.raises(ValueError):
        _rpc_spec(policy="random")
    with pytest.raises(ValueError):
        _rpc_spec(n_channels=0)
    with pytest.raises(ValueError):
        _rpc_spec(classes=(TrafficClass(name="z", weight=0.0),))


def test_harness_validation():
    cluster = build_cluster(2, seed=0)
    with pytest.raises(ValueError):
        ServingHarness(cluster, duration_ns=0, window_ns=1)
    with pytest.raises(ValueError):
        ServingHarness(cluster, duration_ns=10, window_ns=20)
    harness = ServingHarness(cluster, duration_ns=10 * MILLIS,
                             window_ns=10 * MILLIS)
    with pytest.raises(RuntimeError):
        harness.run()                           # no tenants
    harness.add_tenant(TenantSpec(name="t", hosts=(0,), server_host=1,
                                  rate_per_s=1_000.0))
    harness.run()
    with pytest.raises(RuntimeError):
        harness.run()                           # already ran


def test_weighted_class_pick_is_deterministic_and_weighted():
    spec = _rpc_spec(classes=(
        TrafficClass(name="hot", weight=0.9),
        TrafficClass(name="cold", weight=0.1)))
    harness = _harness()
    tenant = Tenant(spec, harness)
    rng = RngRegistry(5).stream("picks")
    picks = [tenant._pick_class(rng) for _ in range(1000)]
    rng2 = RngRegistry(5).stream("picks")
    assert picks == [tenant._pick_class(rng2) for _ in range(1000)]
    assert 800 < picks.count(0) < 980


def test_monitor_series_published():
    from repro.analysis.monitor import Monitor

    harness = _harness()
    tenant = harness.add_tenant(_rpc_spec())
    monitor = Monitor(harness.cluster.sim, harness.cluster.stats)
    harness.run(monitor=monitor)
    series = monitor.series[f"serving.{tenant.spec.name}.achieved_rps"]
    assert len(series) == tenant.recorder.n_windows
    assert any(value > 0 for _, value in series)
