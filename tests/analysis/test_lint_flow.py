"""XR4xx interprocedural rules against the PR 6 defect fixtures.

The positive fixtures under ``lint_fixtures/`` reconstruct the three real
defects fixed in commit 7a5b6f9 (stale-guard QpCache race, QP leak on the
ConnectError edge, unbounded close-drain) plus the torn-invariant shape;
the negative fixtures are the post-fix versions.  Each rule is run alone
via ``run_source`` with a non-harness path so the ``tests/`` exemptions
don't mask the leak rules.
"""

import textwrap
from pathlib import Path

from repro.analysis.lint import CallGraph, LintRunner

FIXTURES = Path(__file__).parent / "lint_fixtures"


def lint_fixture(name, rule):
    source = (FIXTURES / name).read_text()
    runner = LintRunner(select=[rule])
    findings = runner.run_source(source, "fixture.py")
    assert not runner.errors, runner.errors
    return findings


def lint(source, rule):
    runner = LintRunner(select=[rule])
    findings = runner.run_source(textwrap.dedent(source), "fixture.py")
    assert not runner.errors, runner.errors
    return findings


# ---------------------------------------------------------------- XR401
def test_xr401_fires_on_prefix_qpcache_race():
    findings = lint_fixture("xr401_qpcache_prefix.py", "stale-guard")
    assert [f.code for f in findings] == ["XR401", "XR401"]
    # One hit per racy method: put's append and prewarm's append.
    assert {f.line for f in findings} == {17, 26}
    assert "yield" in findings[0].message


def test_xr401_silent_on_fixed_qpcache():
    assert lint_fixture("xr401_qpcache_fixed.py", "stale-guard") == []


def test_xr401_recheck_must_match_the_guard_fingerprint():
    # Re-checking an unrelated condition does not refresh the guard.
    findings = lint("""
        class QpCache:
            def put(self, qp):
                if len(self._pool) >= self.capacity:
                    return
                yield self.verbs.modify_qp(qp)
                if self.closed:
                    return
                self._pool.append(qp)
        """, rule="stale-guard")
    assert [f.code for f in findings] == ["XR401"]


# ------------------------------------------------ XR401 (alloc-install)
def test_xr401_fires_on_prefix_rendezvous_alloc_races():
    findings = lint_fixture("xr401_rendezvous_prefix.py", "stale-guard")
    assert [f.code for f in findings] == ["XR401", "XR401"]
    # One hit per racy path: the fused `msg.src_buffer = yield from
    # alloc(...)` install in _send_announce and the `_rendezvous[seq] =`
    # install in _start_rendezvous.
    assert {f.line for f in findings} == {19, 37}
    assert "alloc" in findings[0].message
    assert "re-check" in findings[0].message


def test_xr401_silent_on_fixed_rendezvous_paths():
    assert lint_fixture("xr401_rendezvous_fixed.py", "stale-guard") == []


def test_xr401_alloc_install_needs_the_guard_before_the_install():
    # The re-check must sit between the yield and the install; one after
    # the install does not un-race it.
    findings = lint("""
        class Channel:
            def start(self, header):
                buffer = yield from self.ctx.memcache.alloc(header.size)
                self._rendezvous[header.seq] = buffer
                if self.state is not ChannelState.READY:
                    return
        """, rule="stale-guard")
    assert [f.code for f in findings] == ["XR401"]
    assert findings[0].line == 5


def test_xr401_alloc_install_tracks_wrapper_aliases():
    # Wrapping the buffer in a dataclass before installing it is still
    # an install of the allocation.
    findings = lint("""
        class Channel:
            def start(self, header):
                buffer = yield from self.ctx.memcache.alloc(header.size)
                entry = Rendezvous(seq=header.seq, buffer=buffer)
                self._rendezvous[header.seq] = entry
        """, rule="stale-guard")
    assert [f.code for f in findings] == ["XR401"]
    assert findings[0].line == 6


def test_xr401_alloc_into_bare_local_is_not_an_install():
    # A local list cannot be reached by mark_broken — not shared state.
    findings = lint("""
        def warm(ctx, sizes):
            buffers = []
            for size in sizes:
                buffer = yield from ctx.memcache.alloc(size)
                buffers.append(buffer)
            return buffers
        """, rule="stale-guard")
    assert findings == []


# ---------------------------------------------------------------- XR402
def test_xr402_fires_on_prefix_connect_leak():
    findings = lint_fixture("xr402_connect_prefix.py",
                            "exception-edge-leak")
    assert [f.code for f in findings] == ["XR402"]
    # Flagged at the unprotected yield-from in Context.connect — not in
    # CmAgent.connect, whose raises escape the QP via the exception arg.
    assert findings[0].line == 34
    assert "recycled" in findings[0].message


def test_xr402_silent_on_fixed_connect():
    assert lint_fixture("xr402_connect_fixed.py",
                        "exception-edge-leak") == []


def test_xr402_needs_a_catcher_to_call_the_edge_handled(tmp_path):
    # The raiser lives in one module, the catcher in another: only the
    # project-wide call graph (run_paths) can join them.
    (tmp_path / "agent.py").write_text(textwrap.dedent("""
        class DialError(Exception):
            pass

        def dial(host):
            ok = yield host.ping()
            if not ok:
                raise DialError(host)
            return ok

        def attach(self, host):
            qp = self.verbs.create_qp(self.pd)
            yield from dial(host)
            self.qps.append(qp)
        """))
    catcher = tmp_path / "retry.py"
    catcher.write_text(textwrap.dedent("""
        def retry(hosts):
            for host in hosts:
                try:
                    yield from dial(host)
                except DialError:
                    continue
        """))

    solo = LintRunner(select=["exception-edge-leak"])
    assert solo.run_paths([str(tmp_path / "agent.py")]) == []

    joined = LintRunner(select=["exception-edge-leak"])
    findings = joined.run_paths([str(tmp_path)])
    assert [f.code for f in findings] == ["XR402"]
    assert findings[0].path.endswith("agent.py")


def test_xr402_builtin_exceptions_are_not_protocol_edges():
    # KeyError is caught in-tree constantly; treating it as a handled
    # protocol edge would flag every assert-style guard.
    findings = lint("""
        def lookup(self, key):
            qp = self.cache.get()
            yield from self.table.fetch(key)
            self.qps.append(qp)

        def fetch(self, key):
            if key not in self.rows:
                raise KeyError(key)
            yield self.sim.timeout(10)
            return self.rows[key]

        def caller(self):
            try:
                yield from self.fetch("x")
            except KeyError:
                pass
        """, rule="exception-edge-leak")
    assert findings == []


# ---------------------------------------------------------------- XR403
def test_xr403_fires_on_prefix_close_drain():
    findings = lint_fixture("xr403_close_drain_prefix.py",
                            "unbounded-yield-loop")
    assert [f.code for f in findings] == ["XR403"]
    assert findings[0].line == 13  # anchored at the while header


def test_xr403_silent_on_fixed_close_drain():
    assert lint_fixture("xr403_close_drain_fixed.py",
                        "unbounded-yield-loop") == []


def test_xr403_silent_when_loop_makes_progress():
    findings = lint("""
        def drain(self, qp):
            while qp.sq:
                qp.sq.pop()
                yield self.sim.timeout(10)
        """, rule="unbounded-yield-loop")
    assert findings == []


# ---------------------------------------------------------------- XR404
def test_xr404_fires_on_torn_transfer():
    findings = lint_fixture("xr404_migrate_prefix.py",
                            "yield-in-critical-section")
    assert [f.code for f in findings] == ["XR404"]
    assert findings[0].line == 15


def test_xr404_silent_on_fixed_transfer_and_in_flight_idiom():
    assert lint_fixture("xr404_migrate_fixed.py",
                        "yield-in-critical-section") == []


# --------------------------------------------------- call-graph precision
def test_yield_from_of_yield_free_callee_is_not_a_preemption():
    findings = lint("""
        class QpCache:
            def note(self, qp):
                return []

            def put(self, qp):
                if len(self._pool) >= self.capacity:
                    return
                yield from self.note(qp)
                self._pool.append(qp)
        """, rule="stale-guard")
    assert findings == []


def test_yield_from_of_unknown_callee_is_conservatively_preempting():
    findings = lint("""
        class QpCache:
            def put(self, qp):
                if len(self._pool) >= self.capacity:
                    return
                yield from self.audit_hook(qp)
                self._pool.append(qp)
        """, rule="stale-guard")
    assert [f.code for f in findings] == ["XR401"]


def test_callgraph_may_preempt_fixpoint_through_delegation():
    source = textwrap.dedent("""
        def leaf():
            yield 1

        def middle():
            yield from leaf()

        def quiet():
            return 2

        def relay():
            yield from quiet()
        """)
    import ast

    graph = CallGraph.build([("mod.py", ast.parse(source))])
    assert graph.may_preempt("leaf")
    assert graph.may_preempt("middle")
    assert not graph.may_preempt("quiet")
    assert not graph.may_preempt("relay")
    assert graph.may_preempt("never_seen")  # unknown => conservative
