"""Analysis framework: clock sync, tracing, histograms, monitor."""

import pytest

from repro.analysis import ClockSync, LatencyHistogram, Monitor, Tracer
from repro.sim import MICROS, MILLIS, RngRegistry, SECONDS
from repro.xrdma import XrdmaConfig
from tests.conftest import run_process
from tests.xrdma.conftest import connect_pair


# --------------------------------------------------------------- clock sync

def test_clocks_have_distinct_offsets():
    sync = ClockSync(RngRegistry(1))
    offsets = {sync.clock(h).offset_ns for h in range(8)}
    assert len(offsets) > 1


def test_offset_estimate_close_to_truth():
    sync = ClockSync(RngRegistry(1))
    estimate = sync.sync(0, 1)
    truth = sync.true_offset(0, 1)
    assert abs(estimate - truth) <= ClockSync.RESIDUAL_BOUND_NS


def test_offset_is_antisymmetric():
    sync = ClockSync(RngRegistry(1))
    sync.sync(0, 1)
    assert sync.offset(0, 1) == -sync.offset(1, 0)


def test_offset_syncs_lazily():
    sync = ClockSync(RngRegistry(1))
    assert sync.offset(2, 3) == sync.offset(2, 3)


# ---------------------------------------------------------------- histogram

def test_histogram_mean_and_bounds():
    histogram = LatencyHistogram()
    for value in (1000, 2000, 3000):
        histogram.record(value)
    assert histogram.mean_ns == 2000
    assert histogram.min_ns == 1000
    assert histogram.max_ns == 3000


def test_histogram_percentiles_are_ordered():
    histogram = LatencyHistogram()
    for value in range(1, 1001):
        histogram.record(value * 100)
    p50 = histogram.percentile(50)
    p99 = histogram.percentile(99)
    assert p50 < p99
    assert 3_000 < p50 < 80_000


def test_histogram_percentile_validation():
    histogram = LatencyHistogram()
    with pytest.raises(ValueError):
        histogram.percentile(0)
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_histogram_merge():
    a, b = LatencyHistogram(), LatencyHistogram()
    a.record(100)
    b.record(300)
    a.merge(b)
    assert a.count == 2
    assert a.min_ns == 100 and a.max_ns == 300


def test_histogram_rejects_negative():
    with pytest.raises(ValueError):
        LatencyHistogram().record(-1)


# ------------------------------------------------------------------ tracing

def traced_pair(cluster):
    config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1)
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=config, server_config=config)
    sync = ClockSync(cluster.rng)
    client_tracer = Tracer(client, sync)
    server_tracer = Tracer(server, sync)
    return client, server, client_ch, server_ch, client_tracer, server_tracer


def test_trace_decomposition_recovers_network_time(cluster):
    client, server, client_ch, server_ch, ct, st = traced_pair(cluster)

    def scenario():
        msg = client.send_msg(client_ch, 256)
        yield server.incoming.get()
        yield msg.acked
        return msg

    msg = run_process(cluster, scenario(), limit=2 * SECONDS)
    assert st.records, "receiver tracer recorded nothing"
    record = next(iter(st.records.values()))
    # Network time must be positive and below the end-to-end total,
    # despite the hosts' clocks being megahertz apart.
    assert 0 < record.network_ns < 60 * MICROS
    assert record.payload_size == 256


def test_trace_request_api(cluster):
    client, server, client_ch, server_ch, ct, st = traced_pair(cluster)

    def scenario():
        msg = client.send_msg(client_ch, 64)
        yield server.incoming.get()
        yield msg.acked
        return msg

    msg = run_process(cluster, scenario(), limit=2 * SECONDS)
    # Sender side records total latency once acked.
    record = client.trace_request(msg)
    assert record is None or record.total_ns > 0
    assert ct.latency.count >= 1


def test_bare_data_mode_traces_nothing(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    sync = ClockSync(cluster.rng)
    tracer = Tracer(server, sync)

    def scenario():
        client.send_msg(client_ch, 64)
        yield server.incoming.get()

    run_process(cluster, scenario(), limit=2 * SECONDS)
    assert not tracer.records


def test_poll_gap_watchdog_catches_stalls(cluster):
    client, server, client_ch, server_ch, ct, st = traced_pair(cluster)
    client.inject_stall(2 * MILLIS)   # the Sec. VII-D allocator-lock stall
    cluster.sim.run(until=cluster.sim.now + 20 * MILLIS)
    assert client.poll_gaps, "watchdog missed the stall"
    assert ct.poll_gap_log
    assert ct.poll_gap_log[0].duration_ns >= 2 * MILLIS


def test_slow_segment_logging(cluster):
    client, server, client_ch, server_ch, ct, st = traced_pair(cluster)
    ct.segment("allocator_lock", 80 * MICROS)    # above the 50 µs threshold
    ct.segment("fast_path", 1 * MICROS)          # below
    assert len(ct.slow_log) == 1
    assert ct.slow_log[0].location == "allocator_lock"


def test_tracing_overhead_is_small(cluster):
    """Sec. VII-A: req-rsp adds ~200 ns (2–4%) over bare-data."""
    def measure(config):
        from repro.cluster import build_cluster
        fresh = build_cluster(2)
        client, server, client_ch, server_ch = connect_pair(
            fresh, client_config=config, server_config=config)
        server_ch.on_request = lambda m: server.send_response(m, 64)
        latencies = []

        def scenario():
            for _ in range(20):
                t0 = fresh.sim.now
                request = client.send_request(client_ch, 64)
                yield request.response
                latencies.append((fresh.sim.now - t0) / 2)

        run_process(fresh, scenario(), limit=5 * SECONDS)
        return sum(latencies) / len(latencies)

    bare = measure(XrdmaConfig(req_rsp_mode=False))
    traced = measure(XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1))
    overhead = (traced - bare) / bare
    assert 0 <= overhead < 0.10


# ------------------------------------------------------------------ monitor

def test_monitor_collects_context_series(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    monitor = Monitor(cluster.sim, cluster.stats, sample_interval_ns=MILLIS)
    monitor.attach(client)

    def scenario():
        for _ in range(20):
            client.send_msg(client_ch, 128)
            yield server.incoming.get()
            yield cluster.sim.timeout(MILLIS)

    run_process(cluster, scenario(), limit=2 * SECONDS)
    assert monitor.values("ctx%d.tx_msgs" % client.ctx_id)
    assert monitor.values("ctx%d.channels" % client.ctx_id)[-1] == 1
    assert max(monitor.values("ctx%d.mem_occupied" % client.ctx_id)) > 0


def test_monitor_fabric_sampler(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    monitor = Monitor(cluster.sim, cluster.stats, sample_interval_ns=MILLIS)
    monitor.start_fabric_sampler()

    def scenario():
        client.send_msg(client_ch, 1 << 20)
        yield server.incoming.get()

    run_process(cluster, scenario(), limit=2 * SECONDS)
    cluster.sim.run(until=cluster.sim.now + 5 * MILLIS)
    delivered = monitor.values("net.data_bytes_delivered")
    assert delivered[-1] >= 1 << 20


def test_monitor_rate_helpers(cluster):
    monitor = Monitor(cluster.sim, cluster.stats)
    monitor.series["x"] = [(0, 0), (1_000_000_000, 100)]
    assert monitor.deltas("x") == [100]
    assert monitor.rate_per_second("x") == [100.0]
