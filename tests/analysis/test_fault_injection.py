"""Filter (fault injection) and Mock (TCP fallback)."""

import pytest

from repro.analysis import Filter, Mock
from repro.analysis.faultfilter import FaultRule
from repro.sim import MICROS, MILLIS, SECONDS
from tests.conftest import run_process
from tests.xrdma.conftest import connect_pair


def test_filter_drops_messages(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    server.filter = Filter(cluster.rng.stream("faults"))
    server.filter.add_rule(FaultRule(drop_probability=1.0))

    for _ in range(5):
        client.send_msg(client_ch, 64)
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)

    assert server.filter.dropped == 5
    assert len(server.incoming.items) == 0


def test_filter_delays_messages(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    server.filter = Filter(cluster.rng.stream("faults"))
    server.filter.add_rule(FaultRule(delay_ns=5 * MILLIS))

    def scenario():
        t0 = cluster.sim.now
        client.send_msg(client_ch, 64)
        yield server.incoming.get()
        return cluster.sim.now - t0

    elapsed = run_process(cluster, scenario(), limit=2 * SECONDS)
    assert elapsed >= 5 * MILLIS
    assert server.filter.delayed == 1


def test_filter_rule_scoped_to_channel(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    server.filter = Filter(cluster.rng.stream("faults"))
    server.filter.add_rule(FaultRule(drop_probability=1.0,
                                     channel_id=999_999))  # matches nothing

    def scenario():
        client.send_msg(client_ch, 64)
        yield server.incoming.get()

    run_process(cluster, scenario(), limit=2 * SECONDS)
    assert server.filter.dropped == 0


def test_filter_disable_online(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    server.filter = Filter(cluster.rng.stream("faults"))
    rule = server.filter.add_rule(FaultRule(drop_probability=1.0))
    rule.enabled = False

    def scenario():
        client.send_msg(client_ch, 64)
        yield server.incoming.get()

    run_process(cluster, scenario(), limit=2 * SECONDS)
    assert server.filter.dropped == 0


def test_mock_routes_messages_over_tcp(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    mock = Mock(cluster)

    def scenario():
        yield from mock.engage(client, client_ch, server, server_ch)
        msg = client.send_msg(client_ch, 4096, payload="via-tcp")
        incoming = yield server.incoming.get()
        return msg, incoming

    msg, incoming = run_process(cluster, scenario(), limit=2 * SECONDS)
    assert incoming.payload == "via-tcp"
    assert mock.is_engaged(client_ch)
    # The RDMA window saw none of it.
    assert client_ch.window.seq == 0


def test_mock_supports_rpc(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    mock = Mock(cluster)

    def scenario():
        yield from mock.engage(client, client_ch, server, server_ch)
        request = client.send_request(client_ch, 128, payload="ping")
        incoming = yield server.incoming.get()
        server.send_response(incoming, 64, payload="pong")
        response = yield request.response
        return response

    response = run_process(cluster, scenario(), limit=2 * SECONDS)
    assert response.payload == "pong"


def test_mock_disengage_restores_rdma(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    mock = Mock(cluster)

    def scenario():
        yield from mock.engage(client, client_ch, server, server_ch)
        client.send_msg(client_ch, 64)
        yield server.incoming.get()
        mock.disengage(client_ch)
        mock.disengage(server_ch)
        client.send_msg(client_ch, 64)
        yield server.incoming.get()

    run_process(cluster, scenario(), limit=2 * SECONDS)
    assert client_ch.window.seq == 1   # second message used the RDMA path
    assert not mock.is_engaged(client_ch)


def test_mock_is_slower_than_rdma(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    mock = Mock(cluster)

    size = 64 * 1024   # large enough that TCP's copy costs dominate

    def rdma_rtt():
        t0 = cluster.sim.now
        msg = client.send_msg(client_ch, size)
        yield server.incoming.get()
        return cluster.sim.now - t0

    rdma = run_process(cluster, rdma_rtt(), limit=2 * SECONDS)

    def tcp_rtt():
        yield from mock.engage(client, client_ch, server, server_ch)
        t0 = cluster.sim.now
        client.send_msg(client_ch, size)
        yield server.incoming.get()
        return cluster.sim.now - t0

    tcp = run_process(cluster, tcp_rtt(), limit=2 * SECONDS)
    assert tcp > rdma
