"""XR-Trace: span decomposition, zero residual, sampling symmetry.

The span chain must account for every nanosecond between app enqueue and
app-level ack (residual exactly zero — a fatal invariant under tests),
sender and receiver must share one sampling decision, and the clock-sync
defects fixed in this PR (nonzero self-offset, silent negative-network
clamp, never-aging estimates) must stay fixed.
"""

import json

import pytest

from repro.analysis import (ClockSync, FaultRule, Filter, Monitor, Tracer,
                            TraceContext)
from repro.analysis.invariants import InvariantError
from repro.analysis.tracing import (LARGE_STAGES, REQUIRED_STAGES,
                                    export_jsonl, merged_trace_records)
from repro.sim import MILLIS, RngRegistry, SECONDS
from repro.xrdma import XrdmaConfig
from tests.conftest import run_process
from tests.xrdma.conftest import connect_pair


def traced_pair(cluster, mask=1, port=9100):
    config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=mask)
    client, server, client_ch, server_ch = connect_pair(
        cluster, port=port, client_config=config, server_config=config)
    sync = ClockSync(cluster.rng)
    return (client, server, client_ch, server_ch,
            Tracer(client, sync), Tracer(server, sync))


def send_and_ack(cluster, client, server, client_ch, n=1, size=256):
    def scenario():
        messages = [client.send_msg(client_ch, size) for _ in range(n)]
        for _ in range(n):
            yield server.incoming.get()
        for msg in messages:
            yield msg.acked
        return messages

    return run_process(cluster, scenario(), limit=10 * SECONDS)


# ------------------------------------------------------------ zero residual

def test_small_message_chain_is_complete_and_zero_residual(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    (msg,) = send_and_ack(cluster, client, server, client_ch, size=256)
    record = ct.records[msg.header.trace_id]
    assert record.complete
    assert record.residual_ns == 0
    assert sum(d for _, d in record.spans) == record.total_ns > 0
    stages = {stage for stage, _ in record.spans}
    assert REQUIRED_STAGES <= stages
    assert not (LARGE_STAGES & stages)          # small: no rendezvous spans
    assert any(stage.startswith("wire_hop") for stage in stages)


def test_large_message_chain_includes_rendezvous_spans(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    (msg,) = send_and_ack(cluster, client, server, client_ch,
                          size=256 * 1024)
    record = ct.records[msg.header.trace_id]
    assert record.complete
    assert record.residual_ns == 0
    stages = {stage for stage, _ in record.spans}
    assert (REQUIRED_STAGES | LARGE_STAGES) <= stages
    # The receiver-driven RDMA Read dominates a large transfer's life.
    spans = dict(record.spans)
    assert spans["rendezvous_read"] > 0


def test_delivery_joins_sender_and_receiver_views(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    (msg,) = send_and_ack(cluster, client, server, client_ch)
    trace_id = msg.header.trace_id
    sender, receiver = ct.records[trace_id], st.records[trace_id]
    assert sender.view == "sender" and receiver.view == "receiver"
    # After the finalize join both views agree on the decomposition.
    assert receiver.complete
    assert receiver.spans == sender.spans
    assert receiver.total_ns == sender.total_ns
    assert sender.network_ns == receiver.network_ns != 0


# ---------------------------------------------------------------- sampling

def test_sampling_decision_is_symmetric(cluster):
    """One decision, made by the sender, drives both histograms — the
    seed's asymmetry (receiver sampled, sender recorded everything) gave
    the two histograms different denominators."""
    client, server, client_ch, _, ct, st = traced_pair(cluster, mask=4)
    send_and_ack(cluster, client, server, client_ch, n=16)
    # 16 consecutive trace ids contain exactly four multiples of 4.
    assert len(ct.records) == 4
    assert set(ct.records) == set(st.records)
    assert all(record.complete for record in ct.records.values())
    assert ct.latency.count == 4
    assert st.network_latency.count == 4


def test_mask_zero_samples_nothing(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster, mask=0)
    send_and_ack(cluster, client, server, client_ch, n=4)
    assert not ct.records and not st.records
    assert ct.latency.count == 0 and st.network_latency.count == 0


def test_dropped_message_leaves_flagged_incomplete_record(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    server.filter = Filter(cluster.rng.stream("trace-drop"))
    server.filter.add_rule(FaultRule(drop_probability=1.0))
    client.send_msg(client_ch, 128)
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)
    assert ct.incomplete_count() == 1
    record = next(iter(ct.records.values()))
    assert not record.complete and record.total_ns == 0
    assert st.records == {}                   # never delivered, never faked
    assert ct.latency.count == 0              # incomplete stays out of stats
    server.filter.clear()


# ------------------------------------------------------------ clamp counter

def test_negative_network_time_is_counted_not_hidden(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    # Poison the estimate: a wildly wrong offset makes the decomposition
    # go negative, which the seed silently clamped into the histogram.
    st.clocksync._estimates[(client.nic.host_id, server.nic.host_id)] = \
        (10 ** 9, 0)
    (msg,) = send_and_ack(cluster, client, server, client_ch)
    assert st.negative_network_clamped == 1
    record = st.records[msg.header.trace_id]
    assert record.network_ns < 0              # the signed truth is kept
    assert st.network_latency.count == 1      # histogram stays non-negative


# ------------------------------------------------------------- clock sync

def test_self_sync_is_exactly_zero_and_consumes_no_entropy():
    sync = ClockSync(RngRegistry(1))
    witness = ClockSync(RngRegistry(1))
    assert sync.sync(4, 4) == 0
    assert sync.offset(4, 4) == 0
    assert sync.exchanges == 0
    # The self-sync drew nothing from the rng stream: the next real
    # exchange matches a registry that never self-synced.
    assert sync.sync(0, 1) == witness.sync(0, 1)


def test_estimates_age_out_under_resync_policy():
    sync = ClockSync(RngRegistry(1), resync_after_ns=1_000)
    first = sync.sync(0, 1, now_ns=0)
    assert sync.exchanges == 1
    assert sync.offset(0, 1, now_ns=500) == first     # still fresh
    assert sync.exchanges == 1
    sync.offset(0, 1, now_ns=1_000)                   # aged: re-estimate
    assert sync.exchanges == 2
    assert sync.estimate_age_ns(0, 1, 1_500) == 500
    # Without the policy (the seed behaviour) estimates never age.
    lazy = ClockSync(RngRegistry(1))
    lazy.sync(0, 1, now_ns=0)
    lazy.offset(0, 1, now_ns=10 ** 15)
    assert lazy.exchanges == 1


# ------------------------------------------------------------ mark hygiene

def test_mark_dedup_suppresses_repeat_traversals(cluster):
    trace = TraceContext(1, cluster.sim, cluster.sim.now)
    trace.mark("post_send")
    trace.mark("post_send")                   # retransmit re-entry
    assert trace.suppressed_marks == 1
    assert [stage for stage, _ in trace.marks] == ["app_enqueue",
                                                   "post_send"]


def test_nonmonotonic_mark_is_an_invariant_violation():
    class RewindingSim:
        now = 1_000

    sim = RewindingSim()
    trace = TraceContext(1, sim, 1_000)
    trace.mark("post_send")
    sim.now = 500
    with pytest.raises(InvariantError):
        trace.mark("nic_tx")


# ----------------------------------------------------------------- export

def test_export_jsonl_round_trips(cluster, tmp_path):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    send_and_ack(cluster, client, server, client_ch, n=3)
    path = tmp_path / "traces.jsonl"
    written = export_jsonl(path, [ct, st], meta={"seed": 7})
    lines = [json.loads(line)
             for line in path.read_text().strip().splitlines()]
    meta, records = lines[0]["meta"], lines[1:]
    assert written == len(records) == 3
    assert meta["records"] == 3 and meta["incomplete"] == 0
    assert meta["seed"] == 7
    # One line per trace, sender view wins, sorted by trace id.
    assert all(record["view"] == "sender" for record in records)
    assert [r["trace_id"] for r in records] == \
        sorted(r["trace_id"] for r in records)
    for record in records:
        assert sum(d for _, d in record["spans"]) == record["total_ns"]
        assert record["residual_ns"] == 0


def test_merged_records_prefer_sender_view(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    send_and_ack(cluster, client, server, client_ch)
    merged = merged_trace_records([st, ct])    # receiver listed first
    assert len(merged) == 1
    assert merged[0]["view"] == "sender"


# ---------------------------------------------------------------- monitor

def test_monitor_carries_trace_series(cluster):
    client, server, client_ch, _, ct, st = traced_pair(cluster)
    monitor = Monitor(cluster.sim, cluster.stats)
    monitor.attach(client)
    send_and_ack(cluster, client, server, client_ch, n=2)
    monitor.sample_context(client)
    prefix = f"ctx{client.ctx_id}"
    assert monitor.values(f"{prefix}.tracing.completed")[-1] == 2
    assert monitor.values(
        f"{prefix}.tracing.negative_network_clamped")[-1] == 0
    assert monitor.values(f"{prefix}.trace.ack_return.count")[-1] == 2
    assert monitor.values(f"{prefix}.trace.nic_tx.p99_ns")[-1] > 0
