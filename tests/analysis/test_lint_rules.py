"""Per-rule fixtures for xr-lint: one failing + one passing snippet each.

Every rule is exercised through :meth:`LintRunner.run_source` with the
rule selected alone, so a fixture can only trip the rule under test.
Suppression comments, path exemptions, and select/ignore plumbing get
their own tests at the bottom.
"""

import textwrap

import pytest

from repro.analysis.lint import LintRunner, all_rules, get_rule
from repro.analysis.lint.core import Finding, PATH_RULE_EXEMPTIONS


def lint(source, rule=None, path="fixture.py", **kwargs):
    runner = LintRunner(select=[rule] if rule else None, **kwargs)
    findings = runner.run_source(textwrap.dedent(source), path)
    assert not runner.errors, runner.errors
    return findings


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------- XR101
def test_wall_clock_flags_time_time():
    findings = lint("""
        import time

        def stamp():
            return time.time()
        """, rule="wall-clock")
    assert codes(findings) == ["XR101"]
    assert "sim.now" in findings[0].message


def test_wall_clock_flags_datetime_now():
    findings = lint("""
        from datetime import datetime

        def stamp():
            return datetime.now()
        """, rule="wall-clock")
    assert codes(findings) == ["XR101"]


def test_wall_clock_ignores_sim_now_and_unimported_names():
    # `time` here is a local object, not the stdlib module: no import, no
    # finding — the resolver demands the name route through an import.
    findings = lint("""
        def stamp(sim, time):
            _ = time.time()
            return sim.now
        """, rule="wall-clock")
    assert findings == []


# ---------------------------------------------------------------- XR102
def test_global_random_flags_stdlib_and_unseeded_rng():
    findings = lint("""
        import random
        import numpy as np

        def jitter():
            rng = np.random.default_rng()
            return random.uniform(0, 1) + np.random.random()
        """, rule="global-random")
    assert codes(findings) == ["XR102", "XR102", "XR102"]


def test_global_random_allows_seeded_streams():
    findings = lint("""
        import random
        import numpy as np

        def jitter(registry):
            rng = np.random.default_rng(42)
            local = random.Random(7)
            stream = registry.stream("jitter")
            return stream.uniform(0, 1)
        """, rule="global-random")
    assert findings == []


# ---------------------------------------------------------------- XR103
def test_id_order_flags_iterating_an_id_keyed_set():
    findings = lint("""
        def survivors(buffers):
            keep = {id(b) for b in buffers}
            return [k for k in sorted(keep)]
        """, rule="id-order")
    assert codes(findings) == ["XR103"]


def test_id_order_flags_for_loop_over_id_set_call():
    findings = lint("""
        def walk(buffers):
            live = set(id(b) for b in buffers)
            for key in live:
                print(key)
        """, rule="id-order")
    assert codes(findings) == ["XR103"]


def test_id_order_allows_membership_probe():
    # The MemCache.shrink pattern: an id()-keyed set used only with `in`.
    findings = lint("""
        def shrink(buffers, pinned):
            pinned_ids = {id(b) for b in pinned}
            return [b for b in buffers if id(b) not in pinned_ids]
        """, rule="id-order")
    assert findings == []


# ---------------------------------------------------------------- XR104
def test_hash_order_flags_sorting_by_identity():
    findings = lint("""
        def order(channels):
            channels.sort(key=id)
            return sorted(channels, key=lambda c: hash(c))
        """, rule="hash-order")
    assert codes(findings) == ["XR104", "XR104"]


def test_hash_order_allows_stable_keys():
    findings = lint("""
        def order(channels):
            return sorted(channels, key=lambda c: c.channel_id)
        """, rule="hash-order")
    assert findings == []


# ---------------------------------------------------------------- XR105
def test_class_counter_flags_mutated_class_attribute():
    findings = lint("""
        class Driver:
            _seq = 0

            def next_name(self):
                Driver._seq += 1
                return f"drv{Driver._seq}"
        """, rule="class-counter")
    assert codes(findings) == ["XR105"]
    assert "per-instance" in findings[0].message


def test_class_counter_allows_instance_counter():
    findings = lint("""
        class Driver:
            def __init__(self):
                self._seq = 0

            def next_name(self):
                self._seq += 1
                return f"drv{self._seq}"
        """, rule="class-counter")
    assert findings == []


# ---------------------------------------------------------------- XR201
def test_memcache_leak_flags_alloc_never_freed():
    findings = lint("""
        def probe(memcache):
            buf = memcache.alloc(4096)
            return buf.addr
        """, rule="memcache-leak")
    assert codes(findings) == ["XR201"]
    assert "'buf'" in findings[0].message


def test_memcache_leak_flags_discarded_alloc():
    findings = lint("""
        def warm(memcache):
            memcache.alloc(4096)
        """, rule="memcache-leak")
    assert codes(findings) == ["XR201"]
    assert "discarded" in findings[0].message


def test_memcache_leak_allows_free_and_escape():
    findings = lint("""
        def roundtrip(memcache):
            buf = memcache.alloc(4096)
            memcache.free(buf)

        def handoff(memcache, registry):
            buf = memcache.alloc(4096)
            registry.adopt(buf)

        def giveback(memcache):
            buf = memcache.alloc(4096)
            return buf
        """, rule="memcache-leak")
    assert findings == []


def test_memcache_leak_release_through_alias_attribute():
    # free(pool.addr) releases `pool` even though the argument is a read
    # through the handle — the release vocabulary looks inside args.
    findings = lint("""
        def scoped(host):
            pool = host.memory.alloc(1 << 20)
            use(pool.addr)
            host.memory.free(pool.addr)

        def use(addr):
            pass
        """, rule="memcache-leak")
    assert findings == []


# ---------------------------------------------------------------- XR202
def test_qp_leak_flags_connect_never_torn_down():
    findings = lint("""
        def dial(cm, pd, cq):
            conn = yield from cm.connect(1, 7000, pd, cq, cq)
            print(conn.qp.qpn)
        """, rule="qp-leak")
    assert codes(findings) == ["XR202"]


def test_qp_leak_flags_discarded_create_qp():
    findings = lint("""
        def warm(verbs, pd, cq):
            yield verbs.create_qp(pd, cq, cq)
        """, rule="qp-leak")
    assert codes(findings) == ["XR202"]
    assert "discarded" in findings[0].message


def test_qp_leak_allows_disconnect_and_discarded_connect():
    # XrdmaContext.connect registers the channel with the context, so a
    # discarded connect() is owner-tracked — only create_qp discards flag.
    findings = lint("""
        def dial(cm, pd, cq):
            conn = yield from cm.connect(1, 7000, pd, cq, cq)
            conn.disconnect()

        def fire_and_forget(ctx):
            yield from ctx.connect(1, 7000)
        """, rule="qp-leak")
    assert findings == []


# ---------------------------------------------------------------- XR301
def test_blocking_call_flags_time_sleep_and_subprocess():
    findings = lint("""
        import time
        import subprocess

        def pause():
            time.sleep(1)
            subprocess.run(["true"])
        """, rule="blocking-call")
    assert codes(findings) == ["XR301", "XR301"]


def test_blocking_call_ignores_local_name_shadowing_module():
    # A local list named `requests` must not match the HTTP library.
    findings = lint("""
        def gather(sim):
            requests = []
            requests.append(1)
            yield sim.timeout(5)
        """, rule="blocking-call")
    assert findings == []


# ---------------------------------------------------------------- XR302
def test_non_event_yield_flags_bare_yield_in_process():
    findings = lint("""
        def pinger(sim):
            yield sim.timeout(5)
            yield
            yield 42
        """, rule="non-event-yield")
    assert codes(findings) == ["XR302", "XR302"]


def test_non_event_yield_leaves_data_generators_alone():
    # Not a sim process: no event-factory yields anywhere.
    findings = lint("""
        def sizes():
            yield 64
            yield 4096
        """, rule="non-event-yield")
    assert findings == []


# ---------------------------------------------------------------- XR303
def test_swallowed_error_flags_bare_and_broad_except():
    findings = lint("""
        def probe(fn):
            try:
                fn()
            except:
                pass

        def probe2(fn):
            try:
                fn()
            except Exception as exc:
                log(exc)
        """, rule="swallowed-error")
    assert codes(findings) == ["XR303", "XR303"]


def test_swallowed_error_allows_narrow_or_reraising_handlers():
    findings = lint("""
        def probe(fn):
            try:
                fn()
            except ValueError:
                pass

        def probe2(fn):
            try:
                fn()
            except Exception:
                raise
        """, rule="swallowed-error")
    assert findings == []


# ---------------------------------------------------------------- XR304
def test_generator_annotated_none_flags_the_finish_rendezvous_shape():
    # The exact pre-PR-10 `_finish_rendezvous` defect: a generator whose
    # `-> None` annotation invites call sites to drop the `yield from`.
    findings = lint("""
        def _finish_rendezvous(self, seq: int) -> None:
            rendezvous = self._rendezvous.pop(seq, None)
            if rendezvous is None:
                return
            self.window.on_complete(seq)
            yield from self._post_arrival_duties()
        """, rule="generator-annotated-none")
    assert codes(findings) == ["XR304"]
    assert "_finish_rendezvous" in findings[0].message


def test_generator_annotated_none_leaves_correct_annotations_alone():
    findings = lint("""
        def fixed(self, seq: int) -> ProcessGenerator:
            yield from self._post_arrival_duties()

        def plain(self, seq: int) -> None:
            self._rendezvous.pop(seq, None)

        def unannotated(self):
            yield self.sim.timeout(5)

        def outer(self) -> None:
            def inner():
                yield 1
            return None
        """, rule="generator-annotated-none")
    assert findings == []


# ------------------------------------------------------------ suppression
def test_line_suppression_silences_one_line_only():
    src = """
        import time

        def stamp():
            a = time.time()  # xr-lint: disable=wall-clock
            return time.time()
        """
    findings = lint(src, rule="wall-clock")
    assert len(findings) == 1
    assert findings[0].line == 6


def test_file_suppression_silences_whole_file():
    findings = lint("""
        # xr-lint: disable-file=wall-clock
        import time

        def stamp():
            return time.time()
        """, rule="wall-clock")
    assert findings == []


def test_suppress_all_wildcard():
    findings = lint("""
        import time

        def stamp():
            return time.time()  # xr-lint: disable=all
        """, rule="wall-clock")
    assert findings == []


def test_suppression_names_are_rule_specific():
    # Disabling an unrelated rule leaves the finding in place.
    findings = lint("""
        import time

        def stamp():
            return time.time()  # xr-lint: disable=global-random
        """, rule="wall-clock")
    assert len(findings) == 1


def test_comma_separated_suppression_list():
    findings = lint("""
        import time
        import random

        def stamp():
            return time.time() + random.random()  # xr-lint: disable=wall-clock, global-random
        """)
    assert findings == []


# --------------------------------------------------------- runner plumbing
def test_path_exemptions_skip_leak_rules_under_tests():
    src = """
        def probe(memcache):
            buf = memcache.alloc(4096)
            return buf.addr
        """
    assert "memcache-leak" in PATH_RULE_EXEMPTIONS["tests"]
    inside = lint(src, path="tests/memory/test_alloc.py")
    outside = lint(src, path="src/repro/memory/probe.py")
    assert codes(inside) == []
    assert codes(outside) == ["XR201"]


def test_path_exemption_covers_qp_leak_under_tests():
    src = """
        def probe(verbs, pd, cq):
            qp = verbs.create_qp(pd, cq, cq)
            return qp.qpn
        """
    assert "qp-leak" in PATH_RULE_EXEMPTIONS["tests"]
    inside = lint(src, rule="qp-leak", path="tests/rnic/test_qp.py")
    outside = lint(src, rule="qp-leak", path="src/repro/rnic/probe.py")
    assert codes(inside) == []
    assert codes(outside) == ["XR202"]


def test_path_exemption_does_not_cover_unlisted_rules():
    # The tests/ exemption is surgical: rules outside the listed set
    # still fire on test code.
    src = """
        import time

        def stamp():
            return time.time()
        """
    assert "wall-clock" not in PATH_RULE_EXEMPTIONS["tests"]
    findings = lint(src, rule="wall-clock", path="tests/util/test_time.py")
    assert codes(findings) == ["XR101"]


def test_path_exemption_covers_exception_edge_leak_in_harness_trees():
    # A handled-exception edge while holding an allocation: flagged in
    # src/, exempt under tests/ and benchmarks/ (the harness owns
    # teardown there).
    src = """
        class OutOfMemory(Exception):
            pass

        def alloc(self, size):
            raise OutOfMemory(size)

        def retry(memory):
            try:
                yield memory.alloc(4096)
            except OutOfMemory:
                pass

        def probe(memory):
            first = memory.alloc(4096)
            second = yield memory.alloc(8192)
            return first, second
        """
    for tree in ("tests", "benchmarks"):
        assert "exception-edge-leak" in PATH_RULE_EXEMPTIONS[tree]
    inside = lint(src, rule="exception-edge-leak",
                  path="tests/memory/test_alloc.py")
    bench = lint(src, rule="exception-edge-leak",
                 path="benchmarks/test_probe.py")
    outside = lint(src, rule="exception-edge-leak",
                   path="src/repro/memory/probe.py")
    assert codes(inside) == []
    assert codes(bench) == []
    assert codes(outside) == ["XR402"]


def test_select_and_ignore_validate_rule_names():
    with pytest.raises(KeyError, match="unknown rule"):
        LintRunner(select=["no-such-rule"])
    with pytest.raises(KeyError, match="known rules"):
        LintRunner(ignore=["no-such-rule"])


def test_ignore_drops_a_rule():
    runner = LintRunner(ignore=["wall-clock"])
    findings = runner.run_source(
        "import time\n\n\ndef f():\n    return time.time()\n", "x.py")
    assert findings == []


def test_syntax_error_is_reported_not_raised():
    runner = LintRunner()
    findings = runner.run_source("def broken(:\n", "bad.py")
    assert findings == []
    assert len(runner.errors) == 1
    assert "syntax error" in runner.errors[0]


def test_registry_covers_all_families():
    by_family = {"XR0": 0, "XR1": 0, "XR2": 0, "XR3": 0, "XR4": 0}
    for cls in all_rules():
        by_family[cls.code[:3]] += 1
    assert by_family["XR0"] >= 1     # suppression audit
    assert by_family["XR1"] >= 4     # determinism
    assert by_family["XR2"] >= 2     # resource pairing
    assert by_family["XR3"] >= 3     # sim hygiene
    assert by_family["XR4"] >= 4     # flow/interprocedural
    assert sum(by_family.values()) >= 13


def test_list_rules_shows_xr4_family():
    from repro.tools.xr_lint import list_rules
    catalogue = list_rules()
    for code in ("XR401", "XR402", "XR403", "XR404"):
        assert code in catalogue


def test_get_rule_roundtrip_and_finding_sort():
    assert get_rule("wall-clock").code == "XR101"
    a = Finding("r", "XR101", "a.py", 3, 0, "m")
    b = Finding("r", "XR101", "a.py", 2, 0, "m")
    assert sorted([a, b], key=Finding.sort_key) == [b, a]
