"""XR404 positive fixture: a two-sided accounting transfer torn by a
yield.

``migrate_in`` credits ``resident_pages`` before the copy and debits
``free_pages`` after it — the invariant ``resident + free == total``
is broken for the whole duration of the suspended copy, and any process
scheduled at that yield observes (and may act on) the inconsistent
counters.
"""


class PageTracker:
    def migrate_in(self, pages):
        self.resident_pages += pages
        yield self.sim.timeout(self.copy_ns * pages)    # XR404: torn update
        self.free_pages -= pages
