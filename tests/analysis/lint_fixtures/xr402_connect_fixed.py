"""XR402 negative fixture: XrdmaContext.connect AFTER the PR 6 fix — the
``ConnectError`` edge is compensated by an except handler that returns the
QP to the cache, so the acquisition is protected and the rule is silent.
"""


class ConnectError(Exception):
    def __init__(self, message, qp=None):
        super().__init__(message)
        self.qp = qp


class CmAgent:
    def connect(self, host, port, pd, send_cq, recv_cq, qp=None,
                timeout_ns=0):
        if qp is None:
            qp = yield self.verbs.create_qp(pd, send_cq, recv_cq)
        ok = yield self.net.dial(host, port, timeout_ns)
        if not ok:
            raise ConnectError("dial timed out", qp=qp)
        return qp


class Context:
    def connect(self, remote_host, service_port, timeout_ns=0):
        recycled = self.qpcache.get()
        try:
            conn = yield from self.cm.connect(
                remote_host, service_port, self.pd,
                self.send_cq, self.recv_cq, qp=recycled,
                timeout_ns=timeout_ns)
        except ConnectError as exc:
            # The QP rides the exception back; recycle it before
            # re-raising so a failed dial never leaks.
            if exc.qp is not None:
                yield from self.qpcache.put(exc.qp)
            raise
        return conn


def retry_dial(ctx, host, port):
    for _ in range(3):
        try:
            return (yield from ctx.connect(host, port))
        except ConnectError:
            continue
    return None
