"""XR402 positive fixture: XrdmaContext.connect BEFORE the PR 6 fix —
the real QP-leak-on-ConnectError edge.

``Context.connect`` pulls a recycled QP from the cache and hands it to
``CmAgent.connect`` via ``yield from``.  The agent raises ``ConnectError``
on timeout — an exception this very file demonstrably catches
(``retry_dial``) — and nothing on that edge releases the recycled QP:
every failed connect orphans one.  The agent itself is clean: its raises
attach the QP to the exception (``ConnectError(..., qp=qp)``), which is
the escape-via-exception idiom XR402 recognizes.
"""


class ConnectError(Exception):
    def __init__(self, message, qp=None):
        super().__init__(message)
        self.qp = qp


class CmAgent:
    def connect(self, host, port, pd, send_cq, recv_cq, qp=None,
                timeout_ns=0):
        if qp is None:
            qp = yield self.verbs.create_qp(pd, send_cq, recv_cq)
        ok = yield self.net.dial(host, port, timeout_ns)
        if not ok:
            raise ConnectError("dial timed out", qp=qp)
        return qp


class Context:
    def connect(self, remote_host, service_port, timeout_ns=0):
        recycled = self.qpcache.get()
        conn = yield from self.cm.connect(           # XR402: ConnectError
            remote_host, service_port, self.pd,      # edge drops `recycled`
            self.send_cq, self.recv_cq, qp=recycled,
            timeout_ns=timeout_ns)
        return conn


def retry_dial(ctx, host, port):
    for _ in range(3):
        try:
            return (yield from ctx.connect(host, port))
        except ConnectError:
            continue
    return None
