"""XR403 negative fixture: the close-drain wait AFTER the PR 6 fix —
bounded by a deadline, so the loop has an explicit exit edge and the rule
stays silent.
"""

SECONDS = 1_000_000_000


class Context:
    def close_channel(self, channel):
        qp = channel.qp
        deadline = self.sim.now + 5 * SECONDS
        while qp.sq or qp.outstanding or qp.current_tx is not None:
            if self.sim.now >= deadline:
                break
            yield self.sim.timeout(10_000)
        yield from self.qpcache.put(qp)
        channel.state = ChannelState.CLOSED
