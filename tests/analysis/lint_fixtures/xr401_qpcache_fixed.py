"""XR401 negative fixture: QpCache.put/prewarm AFTER the PR 6 fix
(commit 7a5b6f9) — the guard is re-evaluated after the last yield, so the
append runs against fresh state and the rule stays silent.
"""


class QpCache:
    def put(self, qp):
        if len(self._pool) >= self.capacity:
            yield self.verbs.destroy_qp(qp)
            return
        yield self.verbs.modify_qp(qp, QpState.RESET)
        if len(self._pool) >= self.capacity:
            # Re-check: a concurrent recycler may have filled the pool
            # while this process was suspended in modify_qp.
            self.destroyed += 1
            yield self.verbs.destroy_qp(qp)
            return
        self._pool.append(qp)
        self.recycled += 1

    def prewarm(self, count):
        for _ in range(count):
            if len(self._pool) >= self.capacity:
                break
            qp = yield self.verbs.create_qp(self.pd, self.send_cq,
                                            self.recv_cq)
            if len(self._pool) >= self.capacity:
                yield self.verbs.destroy_qp(qp)
                break
            self._pool.append(qp)
