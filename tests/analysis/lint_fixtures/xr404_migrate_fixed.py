"""XR404 negative fixtures: invariant-preserving shapes the rule must
stay silent on.

``migrate_in`` performs the paired transfer atomically (no yield between
the two halves); ``send`` uses the in-flight idiom — the +=/-= pair
touches the *same* counter, which is the sanctioned way to account for
work spanning a suspension.
"""


class PageTracker:
    def migrate_in(self, pages):
        yield self.sim.timeout(self.copy_ns * pages)
        self.resident_pages += pages
        self.free_pages -= pages


class Channel:
    def send(self, msg):
        self.in_flight += 1
        yield self.net.transmit(msg)
        self.in_flight -= 1
