"""XR401 positive fixture: QpCache.put/prewarm as they stood BEFORE the
PR 6 fix (commit 7a5b6f9^) — the real check-yield-append race.

Both methods read the capacity guard, suspend at a verbs yield (the whole
simulation runs while suspended, including other recyclers), then append
to the pool trusting the stale guard.  Two processes interleaving here
overfill the pool past ``capacity``.
"""


class QpCache:
    def put(self, qp):
        if len(self._pool) >= self.capacity:
            yield self.verbs.destroy_qp(qp)
            return
        yield self.verbs.modify_qp(qp, QpState.RESET)
        self._pool.append(qp)                           # XR401: stale guard
        self.recycled += 1

    def prewarm(self, count):
        for _ in range(count):
            if len(self._pool) >= self.capacity:
                break
            qp = yield self.verbs.create_qp(self.pd, self.send_cq,
                                            self.recv_cq)
            self._pool.append(qp)                       # XR401: stale guard
