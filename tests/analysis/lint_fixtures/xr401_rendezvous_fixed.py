"""XR401 negative fixture: the channel alloc paths AFTER the PR 10 fix.

The lifecycle re-check is either centralized (``_alloc_checked`` frees
the buffer and bails when the channel died during the yield; its callers
acquire through it, not through ``alloc`` directly) or inline (the
``prime`` shape re-checks ``channel.state`` right after the yield).
Nothing installs an alloc-yield result into shared state on a possibly
dead channel, so the alloc-install scan stays silent.
"""


class ReadRendezvous:
    @staticmethod
    def _alloc_checked(channel, size):
        buffer = yield from channel.ctx.memcache.alloc(size)
        if not channel.is_ready:
            channel.ctx.memcache.free(buffer)
            return None
        return buffer

    def send(self, channel, msg, header):
        buffer = yield from self._alloc_checked(channel, msg.payload_size)
        if buffer is None:
            return
        msg.src_buffer = buffer
        msg.owns_buffer = True
        header.src_addr = buffer.addr
        header.src_rkey = buffer.rkey
        yield from channel.flow.post(WorkRequest(payload=header))

    def on_announce(self, channel, header):
        buffer = yield from self._alloc_checked(channel,
                                                header.payload_size)
        if buffer is None:
            return
        rendezvous = _Rendezvous(seq=header.seq, header=header,
                                 buffer=buffer)
        channel._rendezvous[header.seq] = rendezvous


class XrdmaContext:
    def _prime_channel(self, channel, recv_bytes):
        buffer = yield from self.memcache.alloc(recv_bytes)
        if channel.state is not ChannelState.READY:
            self.memcache.free(buffer)
            return
        channel._recv_buffers.append(buffer)
