"""XR401 positive fixture: the channel send/rendezvous paths as they
stood BEFORE the PR 10 fix — the alloc-install races.

Both methods resume from a ``memcache.alloc`` yield (the whole
simulation runs while this process is suspended, including
``mark_broken``, which sweeps ``_rendezvous`` and the send queue) and
then install the fresh buffer into shared channel state without
re-checking the channel lifecycle: ``_start_rendezvous`` resurrects a
rendezvous entry and issues READs on a BROKEN channel, and
``_send_announce`` stamps the buffer straight onto the in-flight
message at the acquire itself.  Either way the buffer leaks —
``mark_broken`` already ran its sweep and will never see it.
"""


class XrdmaChannel:
    def _send_announce(self, msg, header):
        if not isinstance(getattr(msg, "src_buffer", None), RdmaBuffer):
            msg.src_buffer = yield from self.ctx.memcache.alloc(
                msg.payload_size)                   # XR401: fused install
            msg.owns_buffer = True
        header.src_addr = msg.src_buffer.addr
        header.src_rkey = msg.src_buffer.rkey
        wire = header.wire_bytes(self.ctx.config.req_rsp_mode)
        wr = WorkRequest(opcode=Opcode.SEND_IMM, length=wire,
                         imm_data=header.ack & 0xFFFF_FFFF, payload=header)
        self.ctx.route_wr(wr, self, _WrRoute(tag="announce", message=msg,
                                             seq=header.seq))
        yield from self.flow.post(wr)

    def _start_rendezvous(self, header):
        buffer = yield from self.ctx.memcache.alloc(header.payload_size)
        sizes = self.flow.fragment_sizes(header.payload_size)
        rendezvous = _Rendezvous(
            seq=header.seq, header=header, buffer=buffer,
            fragments_left=len(sizes), started_at=self.ctx.sim.now)
        self._rendezvous[header.seq] = rendezvous   # XR401: stale lifecycle
        self.stats["rendezvous_reads"] += len(sizes)
        offset = 0
        for index, size in enumerate(sizes):
            wr = WorkRequest(
                opcode=Opcode.READ, length=size,
                remote_addr=header.src_addr + offset,
                rkey=header.src_rkey)
            offset += size
            yield from self.flow.post(wr)
