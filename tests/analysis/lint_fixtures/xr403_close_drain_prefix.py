"""XR403 positive fixture: the unbounded close-drain wait as it stood
BEFORE the PR 6 fix.

``close_channel`` spins on the send-queue state with no deadline, no
break, and no statement in the loop body that moves the tested state
forward — if the peer dies mid-drain the closer waits forever.
"""


class Context:
    def close_channel(self, channel):
        qp = channel.qp
        while qp.sq or qp.outstanding or qp.current_tx is not None:
            yield self.sim.timeout(10_000)              # XR403: no exit edge
        yield from self.qpcache.put(qp)
        channel.state = ChannelState.CLOSED
