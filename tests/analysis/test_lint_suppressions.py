"""The XR001 stale-suppression audit.

A ``# xr-lint: disable=...`` comment that never silences a finding is
itself a finding: either the defect it covered was fixed (delete the
comment) or the rule name is wrong (it silences nothing).  The audit is
on by default and is scoped to rules that actually ran, so selecting a
subset or path-exempting a rule never false-flags a legitimate comment.
"""

import textwrap

from repro.analysis.lint import LintRunner


def lint(source, path="fixture.py", **kwargs):
    runner = LintRunner(**kwargs)
    findings = runner.run_source(textwrap.dedent(source), path)
    assert not runner.errors, runner.errors
    return findings


def codes(findings):
    return [f.code for f in findings]


def test_stale_line_suppression_is_flagged():
    findings = lint("""
        def quiet():
            return 1  # xr-lint: disable=wall-clock
        """)
    assert codes(findings) == ["XR001"]
    assert "wall-clock" in findings[0].message
    assert findings[0].line == 3


def test_used_suppression_is_not_flagged():
    findings = lint("""
        import time

        def stamp():
            return time.time()  # xr-lint: disable=wall-clock
        """)
    assert findings == []


def test_unknown_rule_name_is_always_flagged():
    findings = lint("""
        import time

        def stamp():
            return time.time()  # xr-lint: disable=wall-clcok
        """)
    # The typo silences nothing, so both the audit and the rule fire.
    assert sorted(codes(findings)) == ["XR001", "XR101"]


def test_disable_all_is_stale_when_nothing_was_suppressed():
    findings = lint("""
        def quiet():
            return 1  # xr-lint: disable=all
        """)
    assert codes(findings) == ["XR001"]


def test_string_literal_lookalike_is_not_a_suppression():
    # tokenize sees a STRING, not a COMMENT — no entry, no audit finding.
    findings = lint("""
        MARKER = "# xr-lint: disable=wall-clock"
        """)
    assert findings == []


def test_no_check_suppressions_silences_the_audit():
    findings = lint("""
        def quiet():
            return 1  # xr-lint: disable=wall-clock
        """, check_suppressions=False)
    assert findings == []


def test_select_subset_does_not_flag_suppressions_of_unran_rules():
    # wall-clock never ran, so the audit can't call its suppression
    # stale — but a suppression of the selected rule still can be.
    findings = lint("""
        def quiet():
            a = 1  # xr-lint: disable=wall-clock
            b = 2  # xr-lint: disable=global-random
            return a + b
        """, select=["global-random", "stale-suppression"])
    assert codes(findings) == ["XR001"]
    assert findings[0].line == 4


def test_path_exempt_rule_suppression_is_not_flagged():
    # exception-edge-leak is exempt under tests/, so a suppression of it
    # there is unjudgeable — the audit must stay silent rather than
    # demand its removal.
    findings = lint("""
        def quiet():
            return 1  # xr-lint: disable=exception-edge-leak
        """, path="tests/fixture.py")
    assert findings == []


def test_stale_audit_findings_are_themselves_suppressible():
    findings = lint("""
        def quiet():
            # Kept for documentation; audit waived on purpose.
            return 1  # xr-lint: disable=wall-clock, stale-suppression
        """)
    assert findings == []
