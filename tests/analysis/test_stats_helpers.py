"""Remaining statistics helpers."""

import pytest

from repro.analysis.stats import jitter_index, mean, timeseries_rate


def test_mean_empty_is_zero():
    assert mean([]) == 0.0


def test_jitter_index_zero_for_constant_series():
    assert jitter_index([5.0, 5.0, 5.0]) == 0.0


def test_jitter_index_grows_with_spread():
    steady = jitter_index([10, 11, 10, 11])
    jittery = jitter_index([10, 30, 5, 40])
    assert jittery > steady > 0


def test_jitter_index_degenerate_cases():
    assert jitter_index([1.0]) == 0.0
    assert jitter_index([0.0, 0.0]) == 0.0


def test_timeseries_rate():
    samples = [(0, 0), (10, 50), (20, 150)]
    assert timeseries_rate(samples) == [5.0, 10.0]


def test_timeseries_rate_zero_dt_guard():
    samples = [(5, 0), (5, 10)]
    assert timeseries_rate(samples) == [10.0]
