"""Deterministic walk order and renderer output (the CI-diffable gate).

``run_paths`` collects, deduplicates, and globally sorts every file
before any rule runs, so the report is byte-identical regardless of
argument order, overlapping path arguments, or filesystem listing order.
The GitHub renderer gets its own escaping tests — a newline smuggled
into a workflow command truncates the annotation.
"""

import textwrap

from repro.analysis.lint import LintRunner, render_gh, render_text
from repro.analysis.lint.core import Finding

DIRTY = "import time\n\n\ndef f():\n    return time.time()\n"


def make_tree(tmp_path):
    pkg = tmp_path / "pkg"
    sub = pkg / "sub"
    sub.mkdir(parents=True)
    (pkg / "b_dirty.py").write_text(DIRTY)
    (pkg / "a_clean.py").write_text("def ok():\n    return 1\n")
    (sub / "c_dirty.py").write_text(DIRTY)
    return pkg, sub


def report(paths):
    runner = LintRunner()
    findings = runner.run_paths([str(p) for p in paths])
    return render_text(findings, runner.errors)


def test_report_identical_across_argument_orders(tmp_path):
    pkg, sub = make_tree(tmp_path)
    dirty = pkg / "b_dirty.py"
    baseline = report([pkg])
    assert report([sub, dirty, pkg / "a_clean.py"]) == baseline
    assert report([dirty, sub, pkg / "a_clean.py"]) == baseline


def test_overlapping_paths_do_not_duplicate_findings(tmp_path):
    pkg, sub = make_tree(tmp_path)
    # pkg already contains sub and the file; each file lints once.
    assert report([pkg, sub, pkg / "b_dirty.py"]) == report([pkg])


def test_findings_come_out_path_then_line_sorted(tmp_path):
    pkg, _ = make_tree(tmp_path)
    runner = LintRunner()
    findings = runner.run_paths([str(pkg)])
    keys = [(f.path, f.line, f.col) for f in findings]
    assert keys == sorted(keys)
    assert [f.path.endswith("b_dirty.py") for f in findings[:1]] == [True]


def test_golden_text_report(tmp_path):
    # Exact bytes, not just shape — this is the diff CI reviewers see.
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    runner = LintRunner()
    out = render_text(runner.run_paths([str(dirty)]), runner.errors)
    assert out == textwrap.dedent(f"""\
        {dirty}:5:12: XR101[wall-clock] time.time() reads the host wall clock; simulated components must use sim.now (ns)
        xr-lint: 1 finding(s) — XR101[wall-clock]×1""")


def test_render_gh_emits_error_annotations():
    finding = Finding(rule="wall-clock", code="XR101", path="src/a.py",
                      line=5, col=11, message="wall-clock read")
    out = render_gh([finding], [])
    assert out == ("::error file=src/a.py,line=5,col=12,"
                   "title=XR101[wall-clock]::wall-clock read")


def test_render_gh_escapes_workflow_command_metacharacters():
    finding = Finding(rule="demo", code="XR999", path="src/a,b:c.py",
                      line=1, col=0,
                      message="100% broken\nsecond line")
    out = render_gh([finding], ["oops\nnewline"])
    lines = out.split("\n")
    assert len(lines) == 2  # newlines in payloads are %0A-escaped
    assert "file=src/a%2Cb%3Ac.py" in lines[0]
    assert "100%25 broken%0Asecond line" in lines[0]
    assert lines[1] == "::error title=xr-lint::oops%0Anewline"


def test_render_gh_clean_banner():
    assert render_gh([], []) == "xr-lint: clean"
