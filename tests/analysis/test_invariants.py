"""InvariantRegistry: modes, module hooks, deep checks, Monitor wiring."""

import pytest

from repro.analysis import invariants
from repro.analysis.invariants import (InvariantError, InvariantRegistry,
                                       verify_context)
from repro.analysis.monitor import Monitor
from tests.xrdma.conftest import connect_pair


# ----------------------------------------------------------------- registry

def test_fatal_mode_raises_at_the_call_site():
    registry = InvariantRegistry(mode="fatal")
    with pytest.raises(InvariantError):
        registry.check(False, "unit.bad", "boom")
    assert registry.counts["unit.bad"] == 1


def test_count_mode_records_and_continues():
    registry = InvariantRegistry(mode="count")
    assert registry.check(True, "unit.ok")
    assert not registry.check(False, "unit.bad", lambda: "lazy detail")
    assert not registry.check(False, "unit.bad")
    assert registry.total == 2
    assert registry.counts["unit.bad"] == 2
    assert ("unit.bad", "lazy detail") in registry.details
    assert not registry.ok
    assert "unit.bad: 2" in registry.summary()
    registry.reset()
    assert registry.ok


def test_note_never_raises_even_in_fatal_mode():
    registry = InvariantRegistry(mode="fatal")
    registry.note("unit.recorded", "call site raises its own error")
    assert registry.counts["unit.recorded"] == 1


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        InvariantRegistry(mode="warn")


def test_add_check_runs_against_subjects():
    registry = InvariantRegistry(mode="count")

    def never_negative(subject):
        if subject < 0:
            yield f"subject={subject}"

    registry.add_check("unit.negative", never_negative)
    assert registry.run_checks(1, -2, -3) == 2
    assert registry.counts["unit.negative"] == 2


# ---------------------------------------------------------- module-level hook

def test_install_uninstall_roundtrip(fatal_invariants):
    assert invariants.current() is fatal_invariants
    assert invariants.uninstall() is fatal_invariants
    assert invariants.current() is None
    invariants.install(fatal_invariants)
    assert invariants.current() is fatal_invariants


def test_module_hook_is_noop_without_registry(fatal_invariants):
    invariants.uninstall()
    try:
        assert not invariants.enabled()
        # Violations pass through silently — library users pay nothing.
        assert not invariants.check(False, "unit.unnoticed")
        invariants.note("unit.unnoticed")
    finally:
        invariants.install(fatal_invariants)
    assert fatal_invariants.counts["unit.unnoticed"] == 0


def test_fatal_hooks_fire_inside_protocol_code(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    client_ch.window.acked = 7            # corrupt: acked beyond seq
    with pytest.raises(InvariantError):
        client_ch.window.next_seq()


# -------------------------------------------------------------- deep checks

def test_verify_context_clean_on_healthy_pair(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    assert verify_context(client) == []
    assert verify_context(server) == []


def test_verify_context_reports_corrupted_budget(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    registry = InvariantRegistry(mode="count")
    client.wr_budget.in_use += 1          # simulated double-acquire drift
    try:
        found = verify_context(client, registry)
    finally:
        client.wr_budget.in_use -= 1
    assert "flowctl.budget_mismatch" in {name for name, _ in found}
    assert registry.counts["flowctl.budget_mismatch"] == 1


def test_verify_context_runs_pluggable_checks(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    registry = InvariantRegistry(mode="count")
    registry.add_check("unit.always", lambda ctx: [f"ctx={ctx.ctx_id}"])
    found = verify_context(client, registry)
    assert found == [("unit.always", f"ctx={client.ctx_id}")]


# ------------------------------------------------------------ Monitor wiring

def test_monitor_samples_violation_series(cluster, fatal_invariants):
    client, server, client_ch, server_ch = connect_pair(cluster)
    monitor = Monitor(cluster.sim, cluster.stats)
    monitor.attach(client)
    registry = invariants.install(mode="count")
    try:
        monitor.sample_context(client)
        registry.note("unit.bad", "drift")
        monitor.sample_context(client)
    finally:
        invariants.install(fatal_invariants)
    series = monitor.series[f"ctx{client.ctx_id}.invariant_violations"]
    assert [value for _, value in series] == [0, 1]
