"""Text reporting helpers (sparklines, panels, tables)."""

import pytest

from repro.analysis import series_panel, sparkline, table


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_flat_series():
    line = sparkline([5, 5, 5, 5])
    assert len(line) == 4
    assert len(set(line)) == 1


def test_sparkline_shows_shape():
    line = sparkline([0, 0, 10, 10])
    assert line[0] != line[-1]
    assert line == "▁▁██"


def test_sparkline_downsamples():
    line = sparkline(list(range(1000)), width=50)
    assert len(line) == 50
    assert line[0] == "▁" and line[-1] == "█"


def test_series_panel_annotations():
    panel = series_panel("iops", [(0, 1.0), (1_000_000, 3.0)], unit="K")
    assert "iops" in panel
    assert "min=1K" in panel
    assert "max=3K" in panel


def test_series_panel_empty():
    assert "(no samples)" in series_panel("x", [])


def test_table_alignment():
    text = table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert len(lines) == 3
    assert all(len(line) == len(lines[0]) for line in lines)
    assert "22" in lines[2]
