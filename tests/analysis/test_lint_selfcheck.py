"""The xr-lint self-check: the real tree must stay clean (tier-1 gate).

This is the enforcement half of the linter — the rules only have teeth
because this test fails the suite the moment a wall-clock read, a leaked
allocation, or a swallowed SimulationError lands anywhere in ``src/``,
``tests/``, ``benchmarks/``, or ``examples/``.  Fix the finding, or
suppress it with an explanatory ``# xr-lint: disable=<rule>`` comment if
the pattern is intentional.
"""

import json
from pathlib import Path

from repro.analysis.lint import LintRunner, render_json, render_text
from repro.tools.xr_lint import DEFAULT_PATHS, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def tree_paths():
    return [str(REPO_ROOT / p) for p in DEFAULT_PATHS
            if (REPO_ROOT / p).exists()]


def test_repository_is_lint_clean():
    runner = LintRunner()
    findings = runner.run_paths(tree_paths())
    assert runner.errors == [], runner.errors
    assert findings == [], "\n" + render_text(findings, runner.errors)


def test_cli_exit_codes(capsys, tmp_path):
    # Clean tree → 0 with the clean banner.
    clean = tmp_path / "clean.py"
    clean.write_text("def ok():\n    return 1\n")
    assert main([str(clean)]) == 0
    assert "xr-lint: clean" in capsys.readouterr().out

    # A finding → 1, and the finding is on stdout flake8-style.
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "XR101[wall-clock]" in out
    assert f"{dirty}:5:" in out

    # Unparseable file → 2 with an ERROR line.
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2
    assert "ERROR" in capsys.readouterr().out

    # Unknown rule name → 2 (usage error, message on stderr).
    assert main(["--select", "no-such-rule", str(clean)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_json_format(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    assert main(["--format", "json", str(dirty)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 1
    assert payload["findings"][0]["code"] == "XR101"
    assert payload["findings"][0]["line"] == 5


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("XR101", "XR201", "XR301"):
        assert code in out


def test_render_json_is_stable():
    # sort_keys + indent: byte-identical across runs, diffable in CI.
    assert render_json([], []) == render_json([], [])
    assert json.loads(render_json([], ["x: syntax error"]))["errors"] == [
        "x: syntax error"]
