"""Host-memory model: modes, fragmentation, accounting."""

import pytest

from repro.memory import AllocMode, HostMemory, OutOfMemory

MB = 1 << 20


def test_alloc_rounds_to_pages():
    memory = HostMemory()
    allocation = memory.alloc(1)
    assert allocation.length == 4096
    assert memory.used == 4096


def test_free_returns_bytes():
    memory = HostMemory()
    allocation = memory.alloc(MB)
    memory.free(allocation.addr)
    assert memory.used == 0


def test_free_unknown_address_raises():
    memory = HostMemory()
    with pytest.raises(KeyError):
        memory.free(0xDEAD)


def test_capacity_exhaustion():
    memory = HostMemory(capacity_bytes=8 * MB)
    memory.alloc(6 * MB)
    with pytest.raises(OutOfMemory):
        memory.alloc(4 * MB)


def test_hugepage_pool_is_separate():
    memory = HostMemory(hugepage_pool_bytes=4 * MB)
    memory.alloc(4 * MB, AllocMode.HUGEPAGE)
    with pytest.raises(OutOfMemory):
        memory.alloc(4096, AllocMode.HUGEPAGE)
    # Regular allocations still work.
    memory.alloc(4 * MB)


def test_hugepage_free_returns_to_pool():
    memory = HostMemory(hugepage_pool_bytes=4 * MB)
    allocation = memory.alloc(4 * MB, AllocMode.HUGEPAGE)
    memory.free(allocation.addr)
    memory.alloc(4 * MB, AllocMode.HUGEPAGE)


def test_allocations_do_not_overlap():
    memory = HostMemory()
    spans = []
    for _ in range(50):
        allocation = memory.alloc(64 * 1024)
        spans.append((allocation.addr, allocation.addr + allocation.length))
    spans.sort()
    for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
        assert a_end <= b_start


def test_owner_of_finds_containing_allocation():
    memory = HostMemory()
    allocation = memory.alloc(8192)
    assert memory.owner_of(allocation.addr + 100) is allocation
    assert memory.owner_of(0x1) is None


def test_fragmentation_grows_with_churn():
    memory = HostMemory(capacity_bytes=64 * MB)
    assert memory.fragmentation == 0.0
    for _ in range(32):
        allocation = memory.alloc(4 * MB)
        memory.free(allocation.addr)
    assert memory.fragmentation > 0.5


def test_contiguous_fails_under_fragmentation():
    memory = HostMemory(capacity_bytes=64 * MB)
    for _ in range(32):
        allocation = memory.alloc(4 * MB)
        memory.free(allocation.addr)
    with pytest.raises(OutOfMemory):
        memory.alloc(32 * MB, AllocMode.CONTIGUOUS)
    assert memory.reclaim_events == 1


def test_contiguous_alloc_cost_rises_with_fragmentation():
    memory = HostMemory(capacity_bytes=64 * MB)
    fresh = memory.alloc_cost_ns(4 * MB, AllocMode.CONTIGUOUS)
    for _ in range(32):
        allocation = memory.alloc(4 * MB)
        memory.free(allocation.addr)
    assert memory.alloc_cost_ns(4 * MB, AllocMode.CONTIGUOUS) > 2 * fresh
    # Anonymous cost is unaffected.
    assert memory.alloc_cost_ns(4 * MB, AllocMode.ANONYMOUS) == \
        memory.alloc_cost_ns(4 * MB, AllocMode.ANONYMOUS)


def test_invalid_length_rejected():
    with pytest.raises(ValueError):
        HostMemory().alloc(0)
