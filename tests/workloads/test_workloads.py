"""Flow models and trace profiles."""

import pytest

from repro.sim import MILLIS, RngRegistry, SECONDS
from repro.workloads import (burst_profile, diurnal_profile, elephant_size,
                             mice_size, rate_at)
from repro.workloads.flows import FlowSpec


def test_mice_sizes_are_small():
    rng = RngRegistry(0).stream("mice")
    sizes = [mice_size(rng) for _ in range(300)]
    assert all(64 <= size <= 4096 for size in sizes)


def test_elephant_sizes_are_large_and_capped():
    rng = RngRegistry(0).stream("elephant")
    sizes = [elephant_size(rng) for _ in range(300)]
    assert all(256 * 1024 <= size <= 4 * 1024 * 1024 for size in sizes)
    assert max(sizes) > 512 * 1024            # the tail is heavy


def test_flowspec_fixed_size():
    spec = FlowSpec(src=0, dst=1, fixed_size=1234)
    rng = RngRegistry(0).stream("s")
    assert spec.draw_size(rng) == 1234


def test_flowspec_size_fn():
    spec = FlowSpec(src=0, dst=1, size_fn=mice_size)
    rng = RngRegistry(0).stream("s")
    assert 64 <= spec.draw_size(rng) <= 4096


def test_diurnal_profile_oscillates():
    knots = diurnal_profile(duration_ns=4 * SECONDS, period_ns=1 * SECONDS,
                            low=10, high=100)
    values = [value for _, value in knots]
    assert min(values) == pytest.approx(10, abs=1)
    assert max(values) == pytest.approx(100, abs=1)
    # Multiple periods → multiple peaks.
    peaks = sum(1 for a, b, c in zip(values, values[1:], values[2:])
                if b >= a and b >= c and b > 55)
    assert peaks >= 3


def test_diurnal_profile_validation():
    with pytest.raises(ValueError):
        diurnal_profile(0, SECONDS, 1, 2)
    with pytest.raises(ValueError):
        diurnal_profile(SECONDS, SECONDS, 5, 2)


def test_burst_profile_shape():
    knots = burst_profile(duration_ns=SECONDS, base=100, burst=300,
                          burst_start_ns=400 * MILLIS,
                          burst_len_ns=200 * MILLIS)
    assert rate_at(knots, 0) == 100
    assert rate_at(knots, 500 * MILLIS) == 300
    assert rate_at(knots, 700 * MILLIS) == 100


def test_burst_profile_validation():
    with pytest.raises(ValueError):
        burst_profile(SECONDS, 1, 2, burst_start_ns=2 * SECONDS,
                      burst_len_ns=1)


def test_rate_at_steps():
    knots = [(0, 1.0), (100, 2.0), (200, 3.0)]
    assert rate_at(knots, 0) == 1.0
    assert rate_at(knots, 150) == 2.0
    assert rate_at(knots, 999) == 3.0
    with pytest.raises(ValueError):
        rate_at([], 0)


def test_size_fns_deterministic_under_fixed_seed():
    """Same stream name + seed -> the identical size sequence."""
    for fn in (mice_size, elephant_size):
        a = RngRegistry(7).stream("sizes")
        b = RngRegistry(7).stream("sizes")
        assert [fn(a) for _ in range(200)] == [fn(b) for _ in range(200)]
    # ...and a different seed genuinely changes the draws.
    c = RngRegistry(8).stream("sizes")
    d = RngRegistry(7).stream("sizes")
    assert ([mice_size(c) for _ in range(50)]
            != [mice_size(d) for _ in range(50)])


def test_elephant_tail_is_heavy():
    """Pareto-shaped: the mean sits far above the median, and the top
    decile carries a disproportionate share of the bytes."""
    rng = RngRegistry(3).stream("tail")
    sizes = sorted(elephant_size(rng) for _ in range(2000))
    median = sizes[len(sizes) // 2]
    mean = sum(sizes) / len(sizes)
    assert mean > 1.3 * median
    top_decile = sum(sizes[-len(sizes) // 10:])
    assert top_decile > 0.3 * sum(sizes)


def test_mice_biased_small():
    """Log-uniform: the median mouse is far below the 4 KB cap."""
    rng = RngRegistry(5).stream("mice-bias")
    sizes = sorted(mice_size(rng) for _ in range(500))
    assert sizes[len(sizes) // 2] < 1024


def _open_loop_send_times(params, seed=13, gap_ns=30_000):
    """Send timestamps of one open-loop flow on a fabric with ``params``."""
    from repro.cluster import build_cluster
    from repro.workloads.flows import open_loop_sender

    cluster = build_cluster(2, seed=seed, params=params)
    ctx = cluster.xrdma_context(0)
    server = cluster.xrdma_context(1)
    server.listen(9100)
    spec = FlowSpec(src=0, dst=1, fixed_size=32 * 1024,
                    mean_gap_ns=gap_ns, count=40)
    rng = cluster.rng.stream("flow")
    sent_log = []

    def run():
        channel = yield from ctx.connect(1, 9100)
        yield from open_loop_sender(ctx, channel, spec, rng, sent_log)

    proc = cluster.sim.spawn(run())
    cluster.sim.run_until_event(proc, limit=5 * SECONDS)
    assert len(sent_log) == 40
    first = sent_log[0][0]
    return [t - first for t, _, _ in sent_log]


def test_open_loop_gaps_independent_of_completion_times():
    """The pinned open-loop contract: with ``mean_gap_ns > 0`` the send
    schedule is a pure function of (seed, spec).  A drastically slower
    fabric changes every completion time but must not move a single
    enqueue."""
    from repro.sim.params import SimParams, congested_params

    fast = _open_loop_send_times(SimParams())
    slow = _open_loop_send_times(congested_params())
    assert fast == slow
