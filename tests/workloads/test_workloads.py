"""Flow models and trace profiles."""

import pytest

from repro.sim import MILLIS, RngRegistry, SECONDS
from repro.workloads import (burst_profile, diurnal_profile, elephant_size,
                             mice_size, rate_at)
from repro.workloads.flows import FlowSpec


def test_mice_sizes_are_small():
    rng = RngRegistry(0).stream("mice")
    sizes = [mice_size(rng) for _ in range(300)]
    assert all(64 <= size <= 4096 for size in sizes)


def test_elephant_sizes_are_large_and_capped():
    rng = RngRegistry(0).stream("elephant")
    sizes = [elephant_size(rng) for _ in range(300)]
    assert all(256 * 1024 <= size <= 4 * 1024 * 1024 for size in sizes)
    assert max(sizes) > 512 * 1024            # the tail is heavy


def test_flowspec_fixed_size():
    spec = FlowSpec(src=0, dst=1, fixed_size=1234)
    rng = RngRegistry(0).stream("s")
    assert spec.draw_size(rng) == 1234


def test_flowspec_size_fn():
    spec = FlowSpec(src=0, dst=1, size_fn=mice_size)
    rng = RngRegistry(0).stream("s")
    assert 64 <= spec.draw_size(rng) <= 4096


def test_diurnal_profile_oscillates():
    knots = diurnal_profile(duration_ns=4 * SECONDS, period_ns=1 * SECONDS,
                            low=10, high=100)
    values = [value for _, value in knots]
    assert min(values) == pytest.approx(10, abs=1)
    assert max(values) == pytest.approx(100, abs=1)
    # Multiple periods → multiple peaks.
    peaks = sum(1 for a, b, c in zip(values, values[1:], values[2:])
                if b >= a and b >= c and b > 55)
    assert peaks >= 3


def test_diurnal_profile_validation():
    with pytest.raises(ValueError):
        diurnal_profile(0, SECONDS, 1, 2)
    with pytest.raises(ValueError):
        diurnal_profile(SECONDS, SECONDS, 5, 2)


def test_burst_profile_shape():
    knots = burst_profile(duration_ns=SECONDS, base=100, burst=300,
                          burst_start_ns=400 * MILLIS,
                          burst_len_ns=200 * MILLIS)
    assert rate_at(knots, 0) == 100
    assert rate_at(knots, 500 * MILLIS) == 300
    assert rate_at(knots, 700 * MILLIS) == 100


def test_burst_profile_validation():
    with pytest.raises(ValueError):
        burst_profile(SECONDS, 1, 2, burst_start_ns=2 * SECONDS,
                      burst_len_ns=1)


def test_rate_at_steps():
    knots = [(0, 1.0), (100, 2.0), (200, 3.0)]
    assert rate_at(knots, 0) == 1.0
    assert rate_at(knots, 150) == 2.0
    assert rate_at(knots, 999) == 3.0
    with pytest.raises(ValueError):
        rate_at([], 0)
