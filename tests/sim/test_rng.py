"""Tests for reproducible RNG streams."""

from repro.sim import RngRegistry


def test_same_seed_same_sequence():
    a = RngRegistry(7).stream("flows")
    b = RngRegistry(7).stream("flows")
    assert [a.uniform() for _ in range(10)] == [b.uniform() for _ in range(10)]


def test_different_names_differ():
    reg = RngRegistry(7)
    a = reg.stream("flows")
    b = reg.stream("faults")
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x")
    b = RngRegistry(2).stream("x")
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_construction_order_does_not_matter():
    reg1 = RngRegistry(3)
    s1a = reg1.stream("a")
    reg1.stream("b")
    first = [s1a.uniform() for _ in range(3)]

    reg2 = RngRegistry(3)
    reg2.stream("b")
    s2a = reg2.stream("a")
    second = [s2a.uniform() for _ in range(3)]
    assert first == second


def test_randint_bounds():
    s = RngRegistry(0).stream("r")
    values = [s.randint(3, 7) for _ in range(200)]
    assert min(values) >= 3
    assert max(values) <= 6


def test_pareto_respects_scale():
    s = RngRegistry(0).stream("p")
    values = [s.pareto(1.5, 10.0) for _ in range(200)]
    assert all(v >= 10.0 for v in values)


def test_choice_picks_members():
    s = RngRegistry(0).stream("c")
    options = ["a", "b", "c"]
    assert all(s.choice(options) in options for _ in range(50))


def test_bernoulli_extremes():
    s = RngRegistry(0).stream("b")
    assert not any(s.bernoulli(0.0) for _ in range(20))
    assert all(s.bernoulli(1.0) for _ in range(20))
