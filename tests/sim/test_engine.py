"""Unit tests for the DES core: engine, events, processes."""

import pytest

from repro.sim import (
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_timeout_advances_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.value == 100
    assert sim.now == 100


def test_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def proc(name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.spawn(proc("b", 20))
    sim.spawn(proc("a", 10))
    sim.spawn(proc("c", 30))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_insertion_order():
    sim = Simulator()
    order = []

    def proc(name):
        yield sim.timeout(5)
        order.append(name)

    for name in "abcd":
        sim.spawn(proc(name))
    sim.run()
    assert order == list("abcd")


def test_process_return_value_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        return 42

    def parent():
        value = yield sim.spawn(child())
        return value + 1

    p = sim.spawn(parent())
    sim.run()
    assert p.value == 43


def test_manual_event_delivers_value():
    sim = Simulator()
    ev = sim.event("door")
    seen = []

    def waiter():
        value = yield ev
        seen.append(value)

    sim.spawn(waiter())

    def opener():
        yield sim.timeout(10)
        ev.succeed("open")

    sim.spawn(opener())
    sim.run()
    assert seen == ["open"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("died")

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_observed_process_exception_is_not_fatal():
    sim = Simulator()

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("died")

    def parent():
        try:
            yield sim.spawn(bad())
        except RuntimeError:
            return "handled"

    p = sim.spawn(parent())
    sim.run()
    assert p.value == "handled"


def test_run_until_limit_stops_early():
    sim = Simulator()

    def proc():
        yield sim.timeout(1000)

    sim.spawn(proc())
    sim.run(until=300)
    assert sim.now == 300


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(7)
        return "done"

    p = sim.spawn(proc())
    assert sim.run_until_event(p) == "done"


def test_run_until_event_detects_deadlock():
    sim = Simulator()
    ev = sim.event("never")

    def waiter():
        yield ev

    p = sim.spawn(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_event(p)


def test_interrupt_reaches_waiting_process():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, sim.now))

    victim = sim.spawn(sleeper())

    def interrupter():
        yield sim.timeout(50)
        victim.interrupt("wake")

    sim.spawn(interrupter())
    sim.run()
    assert log == [("interrupted", "wake", 50)]


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()


def test_anyof_fires_on_first():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(10, value="fast")
        t2 = sim.timeout(100, value="slow")
        result = yield AnyOf(sim, [t1, t2])
        return list(result.values())

    p = sim.spawn(proc())
    sim.run_until_event(p)
    assert p.value == ["fast"]
    assert sim.now >= 10


def test_allof_waits_for_all():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(10)
        t2 = sim.timeout(100)
        yield sim.all_of([t1, t2])
        return sim.now

    p = sim.spawn(proc())
    sim.run()
    assert p.value == 100


def test_call_after_runs_callback():
    sim = Simulator()
    hits = []
    sim.call_after(25, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [25]


def test_call_at_rejects_past():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)

    sim.spawn(proc())
    sim.run()
    with pytest.raises(ValueError):
        sim.call_at(50, lambda: None)


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42  # type: ignore[misc]

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeout(sim, -1)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = Event(sim)
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


# ------------------------------------------------------------- tie auditing

def test_tie_audit_counts_tied_pops():
    from repro.sim import TieAudit
    sim = Simulator(debug_ties=True)
    order = []

    def waiter(tag, delay):
        yield sim.timeout(delay)
        order.append(tag)

    # Three events at t=10 (one tie group of 3), one alone at t=20.
    for tag in "abc":
        sim.spawn(waiter(tag, 10))
    sim.spawn(waiter("d", 20))
    sim.run()

    assert order == ["a", "b", "c", "d"]        # insertion order within ties
    audit = sim.tie_audit
    assert isinstance(audit, TieAudit)
    assert audit.pops > 0
    assert audit.tie_groups >= 1
    assert audit.max_group >= 3
    assert audit.anomalies == 0
    assert "anomalies=0" in audit.summary()


def test_tie_audit_detects_out_of_order_sequence():
    from repro.sim import TieAudit
    audit = TieAudit()
    ev = Event(Simulator(), name="x")
    audit.observe(10, 1, 1, ev)
    audit.observe(10, 1, 5, ev)
    audit.observe(10, 1, 3, ev)     # tie resolved against insertion order
    assert audit.ties == 2
    assert audit.anomalies == 1


def test_tie_audit_digest_reflects_schedule():
    from repro.sim import TieAudit
    a, b, c = TieAudit(), TieAudit(), TieAudit()
    ev = Event(Simulator(), name="x")
    a.observe(10, 1, 1, ev)
    b.observe(10, 1, 1, ev)
    c.observe(11, 1, 1, ev)         # different time -> different digest
    assert a.digest() == b.digest()
    assert a.digest() != c.digest()


def test_enable_tie_audit_is_idempotent():
    sim = Simulator()
    assert sim.tie_audit is None
    first = sim.enable_tie_audit()
    assert sim.enable_tie_audit() is first
    assert sim.tie_audit is first
