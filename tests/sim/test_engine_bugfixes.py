"""Regression tests for event-loop correctness fixes.

Three bugs, one family: failures the engine promised to surface (or
typed errors it promised to raise) leaking out as silence or as bare
built-in exceptions.
"""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.events import Event


# ------------------------------------------------------- empty-heap step()
def test_step_on_empty_heap_raises_simulation_error():
    sim = Simulator()
    with pytest.raises(SimulationError, match="empty event heap"):
        sim.step()


def test_step_on_drained_heap_raises_simulation_error():
    sim = Simulator()
    sim.timeout(5)
    sim.step()
    with pytest.raises(SimulationError, match="empty event heap"):
        sim.step()


# ------------------------------------------------- late AnyOf child failure
def test_anyof_late_child_failure_escalates():
    """A child failing *after* the AnyOf fired must not vanish.

    The condition's registered callback counts as an observer, so without
    explicit handling the failure would be silently defused.
    """
    sim = Simulator()
    fast = sim.timeout(1)
    slow = sim.event("slow")
    sim.any_of([fast, slow])
    sim.call_after(5, lambda: slow.fail(RuntimeError("late boom")))

    with pytest.raises(SimulationError, match="failed after condition"):
        sim.run()


def test_anyof_late_defused_failure_is_recorded():
    """An explicitly defused late failure is swallowed — but with a trace."""
    sim = Simulator()
    fast = sim.timeout(1)
    slow = sim.event("slow")
    condition = sim.any_of([fast, slow])
    slow.defused = True
    sim.call_after(5, lambda: slow.fail(RuntimeError("expected boom")))

    sim.run()
    assert condition.ok
    assert condition.late_failures == [("slow", repr(RuntimeError("expected boom")))]


def test_anyof_late_child_success_stays_silent():
    sim = Simulator()
    fast = sim.timeout(1)
    slow = sim.event("slow")
    condition = sim.any_of([fast, slow])
    sim.call_after(5, lambda: slow.succeed("fine"))

    sim.run()
    assert condition.ok
    assert condition.late_failures == []


def test_allof_late_failure_escalates_too():
    """AllOf can trigger (via failure) while a sibling is still pending."""
    sim = Simulator()
    failing = sim.event("failing")
    failing.defused = True                 # observed through the condition
    pending = sim.event("pending")
    condition = sim.all_of([failing, pending])
    condition.defused = True               # we inspect it by hand below
    failing.fail(RuntimeError("first"))
    sim.call_after(3, lambda: pending.fail(RuntimeError("second")))

    with pytest.raises(SimulationError, match="failed after condition"):
        sim.run()
    assert not condition.ok


def test_waited_anyof_still_delivers_first_failure():
    """The pre-trigger path is unchanged: first failure fails the AnyOf."""
    sim = Simulator()
    doomed = sim.event("doomed")
    condition = sim.any_of([doomed, sim.timeout(10)])
    doomed.fail(RuntimeError("early"))

    def waiter():
        with pytest.raises(RuntimeError, match="early"):
            yield condition

    proc = sim.spawn(waiter())
    sim.run()
    assert proc.ok


# ------------------------------------------------------------- slot hygiene
def test_events_have_no_instance_dict():
    """The hot classes really are slotted (a __dict__ would defeat it)."""
    sim = Simulator()
    for obj in (Event(sim), sim.timeout(1), sim.any_of([sim.timeout(1)]),
                sim.spawn(iter_once(sim))):
        assert not hasattr(obj, "__dict__"), type(obj).__name__
        with pytest.raises(AttributeError):
            obj.arbitrary_attribute = 1


def iter_once(sim):
    yield sim.timeout(1)


def test_lazy_names_still_render():
    sim = Simulator()
    assert sim.timeout(7).name == "timeout(7)"
    assert sim.event().name == "Event"
    assert sim.event("explicit").name == "explicit"
    assert sim.spawn(iter_once(sim)).name == "iter_once"
    assert sim.spawn(iter_once(sim), name="given").name == "given"
    sim.run()
