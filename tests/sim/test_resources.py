"""Unit tests for Store and Resource primitives."""

import pytest

from repro.sim import Resource, Simulator, Store
from repro.sim.resources import StoreFull


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        yield store.put("a")
        yield store.put("b")

    def consumer():
        item = yield store.get()
        got.append(item)
        item = yield store.get()
        got.append(item)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert got == ["a", "b"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        item = yield store.get()
        times.append((item, sim.now))

    def producer():
        yield sim.timeout(500)
        yield store.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert times == [("late", 500)]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put(1)
        log.append(("put1", sim.now))
        yield store.put(2)
        log.append(("put2", sim.now))

    def consumer():
        yield sim.timeout(100)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("put1", 0) in log
    assert ("put2", 100) in log  # blocked until consumer drained


def test_store_fifo_ordering_of_getters():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))

    def producer():
        yield sim.timeout(10)
        yield store.put("x")
        yield store.put("y")

    sim.spawn(producer())
    sim.run()
    assert got == [("first", "x"), ("second", "y")]


def test_put_nowait_raises_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    store.put_nowait(1)
    with pytest.raises(StoreFull):
        store.put_nowait(2)


def test_put_nowait_hands_to_waiting_getter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    sim.spawn(consumer())
    sim.run()  # consumer is now parked
    store.put_nowait("direct")
    sim.run()
    assert got == ["direct"]


def test_get_nowait_pops_or_raises():
    sim = Simulator()
    store = Store(sim)
    store.put_nowait("a")
    assert store.get_nowait() == "a"
    with pytest.raises(IndexError):
        store.get_nowait()


def test_store_len_tracks_items():
    sim = Simulator()
    store = Store(sim)
    assert len(store) == 0
    store.put_nowait(1)
    store.put_nowait(2)
    assert len(store) == 2


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    held = []

    def worker(name, hold):
        yield res.acquire()
        held.append((name, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.spawn(worker("a", 100))
    sim.spawn(worker("b", 100))
    sim.spawn(worker("c", 10))
    sim.run()
    starts = dict((n, t) for n, t in held)
    assert starts["a"] == 0
    assert starts["b"] == 0
    assert starts["c"] == 100  # had to wait for a release


def test_resource_release_idle_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_available_counter():
    sim = Simulator()
    res = Resource(sim, capacity=3)

    def worker():
        yield res.acquire()

    sim.spawn(worker())
    sim.run()
    assert res.available == 2
    res.release()
    assert res.available == 3


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)
