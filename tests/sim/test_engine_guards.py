"""Runaway-run guards: event budgets and wall-clock deadlines.

Fleet workers arm these before handing a simulator to an arbitrary
scenario; a pathological run must become a :class:`GuardExceeded` with
the pending-event state intact, never a hung worker or pytest session.
"""

import pytest

from repro.sim import GuardExceeded, SimulationError, Simulator


def spinner(sim):
    """An infinite event churner: never drains, never advances far."""
    while True:
        yield sim.timeout(1)


def test_max_events_guard_trips():
    sim = Simulator()
    sim.spawn(spinner(sim))
    with pytest.raises(GuardExceeded, match="max_events"):
        sim.run(max_events=1_000)


def test_guard_exceeded_is_a_simulation_error():
    assert issubclass(GuardExceeded, SimulationError)


def test_guard_leaves_pending_events_intact():
    sim = Simulator()
    sim.spawn(spinner(sim))
    with pytest.raises(GuardExceeded):
        sim.run(max_events=100)
    # The budget was one-shot; the simulation is resumable afterwards.
    before = sim.now
    sim.run(until=before + 50)
    assert sim.now == before + 50


def test_persistent_guard_spans_calls():
    sim = Simulator()
    sim.spawn(spinner(sim))
    sim.set_guards(max_events=100)
    with pytest.raises(GuardExceeded):
        while True:
            sim.run(until=sim.now + 10)
    sim.set_guards()                      # disarm
    sim.run(until=sim.now + 10)           # runs freely again


def test_guard_budget_allows_completion():
    sim = Simulator()

    def finite():
        for _ in range(5):
            yield sim.timeout(3)
        return "done"

    proc = sim.spawn(finite())
    assert sim.run_until_event(proc, max_events=1_000) == "done"


def test_run_until_event_guard_trips():
    sim = Simulator()
    sim.spawn(spinner(sim))
    never = sim.event("never")
    with pytest.raises(GuardExceeded):
        sim.run_until_event(never, max_events=500)


def test_wall_deadline_guard_trips():
    sim = Simulator()
    sim.spawn(spinner(sim))
    # A deadline already in the past trips on the first wall-clock sample.
    with pytest.raises(GuardExceeded, match="deadline"):
        sim.run(wall_timeout_s=0.0)


def test_guarded_run_matches_unguarded_schedule():
    """A generous guard must not perturb the schedule digest."""

    def workload(sim):
        for index in range(50):
            yield sim.timeout(index % 7 + 1)

    def run(**guard_kwargs):
        sim = Simulator(debug_ties=True)
        for _ in range(4):
            sim.spawn(workload(sim))
        sim.run(**guard_kwargs)
        assert sim.tie_audit is not None
        return sim.tie_audit.digest()

    assert run() == run(max_events=10_000)
