"""XR-Stat, XR-Ping, XR-Adm, XR-Perf."""

import pytest

from repro.cluster import build_cluster
from repro.sim import MILLIS, SECONDS
from repro.tools import XrAdm, XrPerf, XrPing, XrStat
from tests.conftest import run_process
from tests.xrdma.conftest import connect_pair, make_context


# ------------------------------------------------------------------- XR-Stat

def test_xr_stat_channel_rows(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    stat = XrStat(cluster)
    stat.attach(client)
    stat.attach(server)

    def scenario():
        client.send_msg(client_ch, 4096)
        yield server.incoming.get()

    run_process(cluster, scenario(), limit=2 * SECONDS)
    rows = stat.channel_rows(client)
    assert len(rows) == 1
    assert rows[0]["remote"] == 1
    assert rows[0]["tx_msgs"] == 1
    assert rows[0]["tx_bytes"] == 4096
    server_rows = stat.channel_rows(server)
    assert server_rows[0]["rx_msgs"] == 1


def test_xr_stat_crucial_indexes_and_format(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    stat = XrStat(cluster)
    stat.attach(client)
    crucial = stat.crucial_indexes()
    assert set(crucial) >= {"pfc_pause_frames", "queue_drops", "cnps",
                            "rnr_naks", "buffer_utilization_bytes"}
    report = stat.format()
    assert "net:" in report
    assert str(client.nic.host_id) in report


# ------------------------------------------------------------------- XR-Ping

def test_xr_ping_full_mesh_all_reachable(cluster):
    contexts = [make_context(cluster, h) for h in range(3)]
    ping = XrPing(cluster, contexts)

    def scenario():
        matrix = yield from ping.run_mesh()
        return matrix

    matrix = run_process(cluster, scenario(), limit=60 * SECONDS)
    assert len(matrix) == 6
    assert all(rtt is not None and rtt > 0 for rtt in matrix.values())
    assert ping.unreachable_pairs() == []
    assert "us" in ping.format_matrix()


def test_xr_ping_detects_dead_host(cluster):
    contexts = [make_context(cluster, h) for h in range(3)]
    ping = XrPing(cluster, contexts)
    cluster.host(2).nic.crash()

    def scenario():
        matrix = yield from ping.run_mesh()
        return matrix

    matrix = run_process(cluster, scenario(), limit=120 * SECONDS)
    dead_pairs = {pair for pair in ping.unreachable_pairs()}
    assert (0, 2) in dead_pairs and (1, 2) in dead_pairs
    assert matrix[(0, 1)] is not None
    assert "FAIL" in ping.format_matrix()


# -------------------------------------------------------------------- XR-Adm

def test_xr_adm_pushes_online_params(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    adm = XrAdm()
    adm.register(client)
    adm.register(server)
    results = adm.set("keepalive_intv_ms", 25.0)
    assert all(value == "ok" for value in results.values())
    assert adm.get("keepalive_intv_ms") == {client.name: 25.0,
                                            server.name: 25.0}


def test_xr_adm_rejects_offline_params_on_running_contexts(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    adm = XrAdm()
    adm.register(client)
    results = adm.set("use_srq", True)
    assert "offline" in results[client.name]


def test_xr_adm_detects_divergence(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    adm = XrAdm()
    adm.register(client)
    adm.register(server)
    assert adm.divergent_params() == []
    client.set_flag("slow_threshold_ns", 999)
    assert "slow_threshold_ns" in adm.divergent_params()
    assert adm.snapshot()[client.name]["slow_threshold_ns"] == 999


# ------------------------------------------------------------------- XR-Perf

def test_xr_perf_latency_mode():
    cluster = build_cluster(2)
    perf = XrPerf(cluster)
    result = perf.run_latency(0, 1, 64, iterations=20)
    assert result.messages == 20
    assert 3.0 < result.mean_latency_us < 8.0
    assert "lat_mean" in result.summary()


def test_xr_perf_incast_mode():
    cluster = build_cluster(4)
    perf = XrPerf(cluster)
    result = perf.run_incast([0, 1, 2], 3, size=64 * 1024,
                             messages_per_source=10)
    assert result.messages == 30
    assert result.bytes_moved == 30 * 64 * 1024
    assert result.goodput_gbps > 1.0


def test_xr_perf_mixed_flow_model():
    cluster = build_cluster(4)
    perf = XrPerf(cluster)
    result = perf.run_mixed([(0, 3), (1, 3), (2, 3)],
                            duration_ns=20 * MILLIS, elephant_ratio=0.4)
    assert result.messages > 0
    assert result.bytes_moved > 0
