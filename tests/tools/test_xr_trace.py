"""xr_trace CLI: golden JSON output under a fixed seed, plus file
handling edge cases.

Regenerate the golden after an intentional report-format change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest -q \
        tests/tools/test_xr_trace.py

then review the ``golden_xr_trace.json`` diff like any other code.
"""

import itertools
import json
import os
from pathlib import Path

import pytest

from repro.fleet.runner import run_scenario_inline
from repro.tools.xr_trace import analyze, load_trace_file, main

GOLDEN_PATH = Path(__file__).with_name("golden_xr_trace.json")


@pytest.fixture
def trace_file(tmp_path, monkeypatch):
    """A deterministic trace artifact: fixed seed, reset trace-id counter
    (the counter is process-global, so without the reset the ids would
    depend on which tests ran earlier)."""
    import repro.xrdma.channel as channel_mod
    monkeypatch.setattr(channel_mod, "_trace_ids", itertools.count(1))
    record = run_scenario_inline(
        "traced-rpc", {"size": 2048, "iterations": 6}, seed=7)
    path = tmp_path / "traces.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        for entry in record["traces"]:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def test_json_report_matches_golden(trace_file, capsys):
    assert main([str(trace_file), "--json", "--slowest", "3"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["summary"]["residual_violations"] == 0
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_PATH.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        pytest.skip("regenerated golden xr_trace report")
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert report == golden, (
        "xr_trace --json output changed — if intentional, regenerate the "
        "golden (see module docstring) and review the diff")


def test_text_report_renders(trace_file, capsys):
    assert main([str(trace_file), "--slowest", "2"]) == 0
    out = capsys.readouterr().out
    assert "xr-trace summary" in out
    assert "critical-path attribution" in out
    assert "neg-network clamped" in out      # the clamp satellite, surfaced
    assert "slowest 2 traces" in out


def test_missing_file_exits_2(tmp_path, capsys):
    assert main([str(tmp_path / "nope.jsonl"), "--json"]) == 2
    assert "xr-trace" in capsys.readouterr().err


def test_loader_tolerates_meta_torn_tail_and_duplicates(tmp_path):
    path = tmp_path / "mixed.jsonl"
    receiver = {"trace_id": 5, "view": "receiver", "complete": True,
                "total_ns": 10, "spans": [["rx_poll", 10]]}
    sender = {"trace_id": 5, "view": "sender", "complete": True,
              "total_ns": 10, "spans": [["rx_poll", 10]]}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"meta": {"suppressed_marks": 3}}) + "\n")
        handle.write(json.dumps(receiver) + "\n")
        handle.write(json.dumps(sender) + "\n")
        handle.write('{"torn tail')
    meta, records = load_trace_file(str(path))
    assert meta["suppressed_marks"] == 3
    assert len(records) == 1 and records[0]["view"] == "sender"
    report = analyze(meta, records)
    assert report["summary"]["suppressed_marks"] == 3
    assert report["summary"]["completed"] == 1
    assert report["critical_path"] == {"rx_poll": 1}
