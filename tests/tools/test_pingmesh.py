"""Continuous pingmesh mode of XR-Ping."""

import pytest

from repro.sim import MILLIS, SECONDS
from repro.tools import XrPing
from tests.xrdma.conftest import make_context


def test_pingmesh_accumulates_history(cluster):
    contexts = [make_context(cluster, h) for h in range(3)]
    ping = XrPing(cluster, contexts)
    ping.start_pingmesh(interval_ns=50 * MILLIS)
    cluster.sim.run(until=cluster.sim.now + 400 * MILLIS)
    timeline = ping.pair_timeline(0, 1)
    assert len(timeline) >= 2
    assert all(rtt is not None and rtt > 0 for _, rtt in timeline)


def test_pingmesh_records_outage(cluster):
    contexts = [make_context(cluster, h) for h in range(3)]
    ping = XrPing(cluster, contexts, probe_timeout_ns=20 * MILLIS)
    ping.start_pingmesh(interval_ns=50 * MILLIS)
    cluster.sim.run(until=cluster.sim.now + 200 * MILLIS)
    cluster.host(2).nic.crash()
    cluster.sim.run(until=cluster.sim.now + 6 * SECONDS)
    timeline = ping.pair_timeline(0, 2)
    assert timeline[0][1] is not None        # was reachable
    assert timeline[-1][1] is None           # outage visible in history
