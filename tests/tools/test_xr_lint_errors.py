"""xr-lint CLI hardening: argument and I/O failures must exit 2 with a
one-line diagnostic on stderr — never a traceback, never a silent clean
report over zero files.
"""

import json

import pytest

from repro.tools.xr_lint import main

DIRTY = "import time\n\n\ndef f():\n    return time.time()\n"


def test_nonexistent_path_exits_2_with_diagnostic(capsys):
    assert main(["does/not/exist"]) == 2
    captured = capsys.readouterr()
    err_lines = captured.err.strip().splitlines()
    assert err_lines == [
        "xr-lint: error: does/not/exist: no such file or directory"]
    assert captured.out == ""  # no misleading "clean" report


def test_every_missing_path_is_reported(capsys, tmp_path):
    real = tmp_path / "ok.py"
    real.write_text("def ok():\n    return 1\n")
    assert main([str(real), "ghost_a", "ghost_b"]) == 2
    err = capsys.readouterr().err
    assert "ghost_a: no such file or directory" in err
    assert "ghost_b: no such file or directory" in err


def test_unknown_select_rule_exits_2(capsys, tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("def ok():\n    return 1\n")
    assert main(["--select", "no-such-rule", str(clean)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_unknown_ignore_rule_exits_2(capsys, tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("def ok():\n    return 1\n")
    assert main(["--ignore", "no-such-rule", str(clean)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_json_artifact_written_alongside_any_format(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    artifact = tmp_path / "findings.json"
    assert main(["--format", "gh", "--json", str(artifact),
                 str(dirty)]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")  # gh annotations on stdout
    payload = json.loads(artifact.read_text())
    assert payload["total"] == 1
    assert payload["findings"][0]["code"] == "XR101"
    assert artifact.read_text().endswith("\n")  # POSIX-friendly artifact


def test_unwritable_json_artifact_exits_2(capsys, tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    target = tmp_path / "no_such_dir" / "findings.json"
    assert main(["--json", str(target), str(dirty)]) == 2
    assert "cannot write" in capsys.readouterr().err


def test_gh_format_clean_tree(capsys, tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text("def ok():\n    return 1\n")
    assert main(["--format", "gh", str(clean)]) == 0
    assert "xr-lint: clean" in capsys.readouterr().out


def test_no_check_suppressions_flag(capsys, tmp_path):
    stale = tmp_path / "stale.py"
    stale.write_text("def ok():\n    return 1  # xr-lint: disable=qp-leak\n")
    assert main([str(stale)]) == 1
    assert "XR001" in capsys.readouterr().out
    assert main(["--no-check-suppressions", str(stale)]) == 0
    assert "xr-lint: clean" in capsys.readouterr().out
