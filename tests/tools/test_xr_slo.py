"""The xr_slo CLI over a synthetic windows.jsonl."""

import json

import pytest

from repro.tools.xr_slo import (load_window_rows, main, summarize,
                                tenant_tables)


def _row(run_id="exp/p=1/s0", tenant="A", window=0, stable=True,
         offered=100, completed=100, p99_us=50.0, slo_ok=True, attempt=0):
    return {"run_id": run_id, "tenant": tenant, "window": window,
            "start_ms": window * 10.0, "stable": stable,
            "offered": offered, "completed": completed,
            "offered_rps": offered * 100.0, "achieved_rps": completed * 100.0,
            "p50_us": p99_us / 2, "p99_us": p99_us, "max_us": p99_us,
            "slo_ok": slo_ok, "attempt": attempt}


@pytest.fixture
def windows_file(tmp_path):
    rows = [
        _row(window=0, stable=False),
        _row(window=1),
        _row(window=2, p99_us=900.0, slo_ok=False),
        _row(window=3, stable=False),
        _row(tenant="B", window=0, stable=False),
        _row(tenant="B", window=1, offered=10, completed=10),
        _row(tenant="B", window=2, offered=0, completed=0, p99_us=0.0),
    ]
    path = tmp_path / "windows.jsonl"
    path.write_text("".join(json.dumps(row) + "\n" for row in rows),
                    encoding="utf-8")
    return path


def test_load_and_group(windows_file):
    rows = load_window_rows(str(windows_file))
    tables = tenant_tables(rows)
    assert set(tables) == {("exp/p=1/s0", "A"), ("exp/p=1/s0", "B")}
    assert [row["window"] for row in tables[("exp/p=1/s0", "A")]] == \
        [0, 1, 2, 3]


def test_summarize_counts_judged_windows_only(windows_file):
    tables = tenant_tables(load_window_rows(str(windows_file)))
    a = summarize(tables[("exp/p=1/s0", "A")])
    assert a["windows_stable"] == 2
    assert a["slo_attainment"] == 0.5
    assert a["slo_ok"] == 0
    assert a["worst_p99_us"] == 900.0
    b = summarize(tables[("exp/p=1/s0", "B")])
    assert b["slo_attainment"] == 1.0        # idle window not judged
    assert b["slo_ok"] == 1


def test_latest_attempt_wins(tmp_path):
    rows = [_row(window=0, attempt=0, p99_us=999.0, slo_ok=False),
            _row(window=0, attempt=1, p99_us=10.0, slo_ok=True)]
    path = tmp_path / "windows.jsonl"
    path.write_text("".join(json.dumps(row) + "\n" for row in rows),
                    encoding="utf-8")
    tables = tenant_tables(load_window_rows(str(path)))
    table = tables[("exp/p=1/s0", "A")]
    assert len(table) == 1
    assert table[0]["p99_us"] == 10.0


def test_cli_text_and_markdown(windows_file, capsys):
    assert main([str(windows_file)]) == 0
    out = capsys.readouterr().out
    assert "xr-slo summary" in out
    assert "exp/p=1/s0" in out

    assert main([str(windows_file.parent), "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("| run | tenant |")
    assert "| FAIL |" in out and "| pass |" in out


def test_cli_windows_detail_and_json(windows_file, capsys):
    assert main([str(windows_file), "--windows", "exp/p=1/s0"]) == 0
    out = capsys.readouterr().out
    assert "tenant A" in out and "tenant B" in out

    assert main([str(windows_file), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["summaries"]) == 2
    assert payload["summaries"][0]["tenant"] == "A"


def test_cli_errors(tmp_path, capsys):
    assert main([str(tmp_path / "missing.jsonl")]) == 2
    empty = tmp_path / "windows.jsonl"
    empty.write_text("", encoding="utf-8")
    assert main([str(tmp_path)]) == 1


def test_torn_tail_tolerated(windows_file):
    with open(windows_file, "a", encoding="utf-8") as handle:
        handle.write('{"run_id": "exp/p=1/s0", "tenant": "A", "window": 9')
    rows = load_window_rows(str(windows_file))
    assert len(rows) == 7
