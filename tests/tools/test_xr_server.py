"""XR-Server: the standing diagnostic endpoint."""

import pytest

from repro.sim import MILLIS, SECONDS
from repro.tools.xr_server import SERVER_PORT, XrServer
from tests.conftest import run_process
from tests.xrdma.conftest import make_context


def test_echo_endpoint(cluster):
    server = XrServer(cluster, host_id=1)
    client = make_context(cluster, 0)

    def scenario():
        channel = yield from client.connect(1, SERVER_PORT)
        request = client.send_request(channel, 2048,
                                      payload={"op": "echo", "n": 7})
        response = yield request.response
        return response

    response = run_process(cluster, scenario(), limit=5 * SECONDS)
    assert response.payload == {"op": "echo", "n": 7}
    assert response.payload_size == 2048
    assert server.echoes == 1


def test_sink_endpoint_counts_bytes(cluster):
    server = XrServer(cluster, host_id=1)
    client = make_context(cluster, 0)

    def scenario():
        channel = yield from client.connect(1, SERVER_PORT)
        for _ in range(3):
            msg = client.send_msg(channel, 10_000)
        yield msg.acked

    run_process(cluster, scenario(), limit=5 * SECONDS)
    cluster.sim.run(until=cluster.sim.now + 20 * MILLIS)
    assert server.sunk_msgs == 3
    assert server.sunk_bytes == 30_000


def test_stat_endpoint(cluster):
    server = XrServer(cluster, host_id=1)
    client = make_context(cluster, 0)

    def scenario():
        channel = yield from client.connect(1, SERVER_PORT)
        request = client.send_request(channel, 64, payload={"op": "stat"})
        response = yield request.response
        return response

    response = run_process(cluster, scenario(), limit=5 * SECONDS)
    assert response.payload["channels"] == 1
    assert "mem_occupied" in response.payload
    assert server.stat_requests == 1


def test_idle_poll_modes_change_latency(cluster):
    """busy < hybrid-idle <= event for a cold (long-idle) request."""
    from repro.xrdma import XrdmaConfig

    def cold_latency(mode):
        from repro.cluster import build_cluster
        fresh = build_cluster(2)
        config = XrdmaConfig(idle_poll_mode=mode)
        server = XrServer(fresh, host_id=1, config=config)
        client = fresh.xrdma_context(0, config=config)

        def scenario():
            channel = yield from client.connect(1, SERVER_PORT)
            yield fresh.sim.timeout(5 * MILLIS)     # go cold
            t0 = fresh.sim.now
            request = client.send_request(channel, 64)
            yield request.response
            return fresh.sim.now - t0

        return run_process(fresh, scenario(), limit=5 * SECONDS)

    busy = cold_latency("busy")
    event = cold_latency("event")
    assert busy < event
