"""Connect storm with mid-storm failures (CM + QP-cache churn).

A burst of connects — some to a dead port — followed by traffic on every
surviving channel while one pair is killed mid-flight.  Survivors must
deliver everything; teardown and timeouts must leave exact accounting.
"""

from repro.sim import MILLIS, SECONDS
from repro.verbs.cm import ConnectError
from tests.conftest import run_process
from tests.scenarios.conftest import assert_quiescent, close_channels, settle
from tests.xrdma.conftest import make_context


def test_connect_storm_with_failures(cluster):
    client = make_context(cluster, 0)
    server = make_context(cluster, 1)
    accepted = server.listen(9400)

    def storm():
        channels = []
        failures = 0
        for i in range(9):
            if i % 3 == 2:
                try:                      # nobody listens on this port
                    yield from client.connect(1, 9999, timeout_ns=5 * MILLIS)
                except ConnectError:
                    failures += 1
            else:
                channels.append((yield from client.connect(1, 9400)))
        return channels, failures

    channels, failures = run_process(cluster, storm(), limit=30 * SECONDS)
    assert failures == 3
    assert len(channels) == 6
    # The single client connects sequentially, so accepts pair up in order.
    srv_channels = [accepted.get_nowait() for _ in channels]

    n = 10
    for channel in channels:
        for _ in range(n):
            client.send_msg(channel, 1024)
    settle(cluster, 100_000)
    # Mid-storm casualty while every channel competes for the shared
    # 4-slot budget.
    channels[2].mark_broken("injected mid-storm failure")
    srv_channels[2].mark_broken("peer injected mid-storm failure")
    settle(cluster, SECONDS)

    for index, srv_channel in enumerate(srv_channels):
        if index != 2:
            assert srv_channel.stats["rx_msgs"] == n, f"channel {index}"

    close_channels(cluster, client)
    settle(cluster)
    assert_quiescent(client, server)
