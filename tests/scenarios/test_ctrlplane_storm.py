"""Control-plane storm: QP-cache accounting, zero leaks, drain deadline.

A connect storm against a live and a dead port must leave *exact* cache
accounting (one ``get`` per attempt, every failure's QP recycled) and —
the hard part — zero leaked QPs: after orderly close, the NIC's QP table
must hold exactly the cache pool, on both ends.  A wedged QP at close
must escalate through the drain deadline to ERROR + destroy instead of
spinning the closer forever or poisoning the cache.
"""

from repro.rnic import QpState
from repro.sim import MILLIS, SECONDS
from repro.verbs.cm import ConnectError
from repro.xrdma import XrdmaConfig
from tests.conftest import run_process
from tests.scenarios.conftest import assert_quiescent, close_channels, settle
from tests.xrdma.conftest import connect_pair, make_context


def _census(host, ctx):
    """(NIC-registered QPNs, cache-pool QPNs) for a context's host."""
    return set(host.nic.qps), {qp.qpn for qp in ctx.qpcache._pool}


def test_storm_exact_accounting_and_zero_leaked_qps(cluster):
    client = make_context(cluster, 0, XrdmaConfig(qp_cache_capacity=8))
    server = make_context(cluster, 1, XrdmaConfig(qp_cache_capacity=8))
    accepted = server.listen(9500)

    attempts = 12

    def storm():
        channels = []
        failures = 0
        for i in range(attempts):
            if i % 4 == 3:            # nobody listens on this port
                try:
                    yield from client.connect(1, 9999, timeout_ns=5 * MILLIS)
                except ConnectError:
                    failures += 1
            else:
                channels.append((yield from client.connect(1, 9500)))
        return channels, failures

    channels, failures = run_process(cluster, storm(), limit=60 * SECONDS)
    assert failures == 3
    assert len(channels) == 9
    for _ in channels:
        accepted.get_nowait()

    # Exact cache-counter accounting: every attempt made one get(), every
    # failure recycled its QP (so post-failure attempts hit the pool).
    cache = client.qpcache
    assert cache.hits + cache.misses == attempts
    assert client.connect_failures == 3
    assert cache.puts == failures
    assert cache.puts == cache.recycled + cache.destroyed
    assert cache.recycled == 3        # pool never full mid-storm

    close_channels(cluster, client)
    settle(cluster)

    # Zero leaked QPs at quiescence: the NIC QP table is exactly the
    # cache pool — on both ends (the server recycled via CLOSE notify).
    assert cache.puts == cache.recycled + cache.destroyed == failures + 9
    for host_id, ctx in ((0, client), (1, server)):
        nic_qpns, pool_qpns = _census(cluster.host(host_id), ctx)
        assert nic_qpns == pool_qpns, f"{ctx.name}: leaked QPs"
        assert len(pool_qpns) <= ctx.qpcache.capacity
    assert_quiescent(client, server)


def test_close_drain_deadline_escalates_to_destroy(cluster):
    config = XrdmaConfig(close_drain_timeout_ns=2 * MILLIS)
    client, server, client_ch, _ = connect_pair(
        cluster, port=9501, client_config=config)
    qpn = client_ch.qp.qpn

    def wedge_and_close():
        # Wedge the QP: the NIC will not transmit until far in the
        # future, so the posted send (and the CLOSE control) never drain.
        client_ch.qp.tx_blocked_until = cluster.sim.now + 10 * SECONDS
        client.send_msg(client_ch, 1024)
        before = cluster.sim.now
        yield from client.close_channel(client_ch)
        return cluster.sim.now - before

    elapsed = run_process(cluster, wedge_and_close(), limit=30 * SECONDS)

    # The drain gave up at the deadline (bounded, not 10 s of spinning)…
    assert client.drain_timeouts == 1
    assert elapsed < SECONDS
    # …and the wedged QP was flushed through ERROR and destroyed — it
    # must be neither NIC-registered nor pooled for reuse.
    assert client_ch.qp.state is QpState.ERROR
    assert qpn not in cluster.host(0).nic.qps
    assert all(qp.qpn != qpn for qp in client.qpcache._pool)
    assert client.qpcache.recycled == 0


def test_clean_close_still_recycles(cluster):
    config = XrdmaConfig(close_drain_timeout_ns=2 * MILLIS)
    client, server, client_ch, _ = connect_pair(
        cluster, port=9502, client_config=config)
    qpn = client_ch.qp.qpn

    def close():
        yield from client.close_channel(client_ch)

    run_process(cluster, close(), limit=30 * SECONDS)
    # Regression guard for the deadline fix: an idle QP drains instantly
    # and still lands back in the cache.
    assert client.drain_timeouts == 0
    assert qpn in cluster.host(0).nic.qps
    assert any(qp.qpn == qpn for qp in client.qpcache._pool)
