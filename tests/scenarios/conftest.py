"""Churn-scenario harness (Sec. VI-C applied to ourselves).

Each scenario drives the seeded DES through a failure pattern production
actually sees — teardown under load, middleware retransmits, cache churn,
connect storms — and then proves the middleware came out *clean*: zero
invariant violations (the autouse fatal registry catches them mid-run,
:func:`assert_quiescent` deep-checks the end state) and exact resource
accounting at quiescence.
"""

from repro.analysis.invariants import verify_context
from repro.sim import MILLIS, SECONDS
from tests.conftest import run_process


def settle(cluster, duration=200 * MILLIS):
    """Let the simulation run with no new stimulus."""
    cluster.sim.run(until=cluster.sim.now + duration)


def close_channels(cluster, ctx, limit=30 * SECONDS):
    """Orderly-close every channel ``ctx`` still owns (peers follow via
    the CLOSE control message)."""

    def closer():
        for channel in list(ctx.channels.values()):
            yield from ctx.close_channel(channel)

    run_process(cluster, closer(), limit=limit)


def assert_quiescent(*contexts):
    """The post-churn contract: nothing leaked, nothing drifted.

    Call after every channel is closed or broken and the sim has settled.
    """
    for ctx in contexts:
        violations = verify_context(ctx)
        assert violations == [], f"{ctx.name}: {violations}"
        assert not ctx.channels, f"{ctx.name}: channels still open"
        assert ctx.wr_budget.in_use == 0, \
            f"{ctx.name}: budget.in_use={ctx.wr_budget.in_use}"
        assert ctx.memcache.in_use_bytes == 0, \
            f"{ctx.name}: memcache.in_use={ctx.memcache.in_use_bytes}"
        assert not ctx.memcache._live, \
            f"{ctx.name}: {len(ctx.memcache._live)} live buffers leaked"
