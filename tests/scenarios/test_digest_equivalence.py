"""Golden-digest equivalence: the optimized hot path fires the same schedule.

The PR 3 optimizations (slotted events, lazy names, the persistent port
tx process, the invariant fast path, the bucketed memcache free list,
the inlined run loops) are only safe because the schedule is provably
unchanged.  Each scenario here runs under :class:`TieAudit` and must
reproduce the checked-in golden digest byte for byte, with zero tie
anomalies.  Any engine change that reorders, adds, or drops events —
however "equivalent" it looks — fails loudly.

To bless an *intentional* schedule change, regenerate the goldens:

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest -q \
        tests/scenarios/test_digest_equivalence.py

then review the diff of ``golden_digests.json`` like any other code.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis import ClockSync, Tracer, invariants
from repro.cluster import build_cluster
from repro.sim import SECONDS, Simulator
from repro.xrdma import XrdmaConfig
from repro.xrdma.memcache import MemCache

from tests.scenarios.test_determinism import run_incast

GOLDEN_PATH = Path(__file__).with_name("golden_digests.json")


# ------------------------------------------------------------- scenarios
def run_timer_churn():
    """Pure-engine schedule: timeout allocation, heap order, resume."""
    sim = Simulator()
    audit = sim.enable_tie_audit()

    def churner(index):
        for round_no in range(40):
            yield sim.timeout((index * 7919 + round_no * 104729) % 997 + 1)

    for index in range(25):
        sim.spawn(churner(index))
    sim.run()
    return audit


def run_memcache_churn():
    """Grow/shrink churn: the arena (MR registration) event schedule.

    Placement inside an arena is schedule-invisible (sub-allocation never
    yields), so this scenario drives what *is* visible: repeated growth
    under fragmented load and shrink cycles that force re-registration —
    if the allocator packs differently, the growth schedule moves.
    """
    cluster = build_cluster(1, seed=5)
    audit = cluster.sim.enable_tie_audit()
    host = cluster.host(0)
    cache = MemCache(host.verbs, host.verbs.alloc_pd(), mr_bytes=128 * 1024)
    sizes = [256, 4096, 1024, 16 * 1024, 512, 64 * 1024, 2048, 8192]

    def churn():
        for round_no in range(6):
            live = []
            for op in range(40):
                buffer = yield from cache.alloc(
                    sizes[(op + round_no) % len(sizes)])
                live.append(buffer)
                if len(live) >= 24:
                    cache.free(live.pop(0))
                    cache.free(live.pop(len(live) // 2))
            for buffer in live:
                cache.free(buffer)
            cache.shrink()

    proc = cluster.sim.spawn(churn())
    cluster.sim.run_until_event(proc)
    return audit


def run_incast_audit(seed):
    audit, _result = run_incast(seed)
    return audit


SCENARIOS = {
    "incast-seed11": lambda: run_incast_audit(11),
    "incast-seed12": lambda: run_incast_audit(12),
    "timer-churn": run_timer_churn,
    "memcache-churn": run_memcache_churn,
}


def _load_golden():
    with GOLDEN_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


def _update_golden(name, audit):
    golden = _load_golden() if GOLDEN_PATH.exists() else {}
    golden[name] = {"digest": audit.digest(), "pops": audit.pops}
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------- tests
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_matches_golden_digest(name):
    audit = SCENARIOS[name]()
    assert audit.pops >= 30, "scenario too small to pin anything"
    assert audit.anomalies == 0, audit.summary()
    if os.environ.get("REGEN_GOLDEN"):
        _update_golden(name, audit)
        pytest.skip(f"regenerated golden digest for {name}")
    golden = _load_golden()[name]
    assert audit.pops == golden["pops"], audit.summary()
    assert audit.digest() == golden["digest"], (
        f"{name}: schedule changed — if intentional, regenerate goldens "
        f"(see module docstring) and review the diff")


def test_disabled_invariants_do_not_change_the_schedule():
    """The sanitizer fast path must be schedule-neutral.

    The gated call sites skip closure allocation when no registry is
    installed; none of that may create, drop, or reorder events.  The
    autouse fixture installs a fatal registry, so the "on" run is the
    fixture default and the "off" run uninstalls it temporarily.
    """
    audit_on = SCENARIOS["incast-seed11"]()
    assert invariants.enabled(), "expected the autouse fatal registry"
    saved = invariants.uninstall()
    try:
        audit_off = SCENARIOS["incast-seed11"]()
    finally:
        invariants.install(saved)
    assert audit_on.digest() == audit_off.digest()
    assert audit_on.pops == audit_off.pops


def test_tracing_is_digest_neutral():
    """XR-Trace marks are passive timestamp captures: attaching tracers
    (req-rsp mode, every message sampled, small and rendezvous paths)
    must not create, drop, or reorder a single event — byte-identical
    schedule digests with and without the tracer."""
    def run(traced):
        cluster = build_cluster(2, seed=21)
        audit = cluster.sim.enable_tie_audit()
        config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1)
        client = cluster.xrdma_context(0, config=config)
        server = cluster.xrdma_context(1, config=config)
        if traced:
            sync = ClockSync(cluster.rng)
            Tracer(client, sync)
            Tracer(server, sync)
        accepted = server.listen(9400)

        def scenario():
            channel = yield from client.connect(1, 9400)
            server_channel = yield accepted.get()
            server_channel.on_request = \
                lambda msg: server.send_response(msg, 64)
            for size in (64, 2048, 256 * 1024):
                for _ in range(4):
                    request = client.send_request(channel, size)
                    yield request.response

        proc = cluster.sim.spawn(scenario())
        cluster.sim.run_until_event(proc, limit=60 * SECONDS)
        return audit

    audit_on, audit_off = run(True), run(False)
    assert audit_on.pops == audit_off.pops
    assert audit_on.digest() == audit_off.digest()


def test_bucketed_free_list_is_first_fit_equivalent():
    """Placement-level proof: the bucketed arena returns the exact
    addresses a naive address-sorted first-fit scan would."""
    from repro.xrdma.memcache import _Arena

    class _FakeMr:
        addr, length = 0x4000, 1 << 20

    class _ReferenceArena:
        """The pre-PR free list: address-sorted scan + sort-based merge."""

        def __init__(self):
            self.free = [(_FakeMr.addr, _FakeMr.length)]

        def alloc(self, size):
            for index, (addr, length) in enumerate(self.free):
                if length >= size:
                    if length == size:
                        del self.free[index]
                    else:
                        self.free[index] = (addr + size, length - size)
                    return addr
            return None

        def release(self, addr, size):
            self.free.append((addr, size))
            self.free.sort()
            merged = []
            for a, length in self.free:
                if merged and merged[-1][0] + merged[-1][1] == a:
                    merged[-1] = (merged[-1][0], merged[-1][1] + length)
                else:
                    merged.append((a, length))
            self.free = merged

    bucketed, reference = _Arena(_FakeMr()), _ReferenceArena()
    sizes = [64, 256, 1024, 4096, 16384, 65536]
    live = []
    state = 12345
    for step in range(6000):
        state = (state * 1103515245 + 12721) % (1 << 31)   # deterministic LCG
        if live and state % 100 < 45:
            addr, size = live.pop(state % len(live))
            bucketed.release(addr, size)
            reference.release(addr, size)
        else:
            size = sizes[state % len(sizes)]
            got = bucketed.alloc(size)
            want = reference.alloc(size)
            assert got == want, f"step {step}: {got} != {want}"
            if got is not None:
                live.append((got, size))
        assert bucketed.free == reference.free, f"step {step}"
