"""Bit-reproducibility regression: one root seed, one schedule.

The xr-lint determinism family (XR1xx) bans the *sources* of divergence
— wall clocks, global RNG state, identity-ordered iteration, class-level
counters.  This scenario checks the *outcome*: running the same seeded
workload twice in one process yields the identical event schedule
(:class:`~repro.sim.engine.TieAudit` digests match byte for byte), the
heap never resolves a tie against insertion order, and a different seed
genuinely changes the schedule.
"""

from repro.cluster import build_cluster
from repro.sim import MILLIS
from repro.tools.xr_perf import XrPerf

#: enough load to pile events onto shared instants (ties) and to draw
#: from per-sender RNG streams (seed sensitivity via inter-message gaps)
SOURCES = [0, 1, 2]
SINK = 3
MESSAGES = 8
SIZE = 16 * 1024
GAP_NS = 40_000


def run_incast(seed):
    """Fresh cluster + fresh driver, audited from the first event."""
    cluster = build_cluster(4, seed=seed)
    audit = cluster.sim.enable_tie_audit()
    perf = XrPerf(cluster)
    result = perf.run_incast(SOURCES, SINK, size=SIZE,
                             messages_per_source=MESSAGES,
                             mean_gap_ns=GAP_NS)
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)   # drain tails
    return audit, result


def test_same_seed_same_schedule():
    audit_a, result_a = run_incast(seed=11)
    audit_b, result_b = run_incast(seed=11)

    # The workload actually ran and actually contended.
    assert result_a.messages == len(SOURCES) * MESSAGES
    assert audit_a.pops > 100
    assert audit_a.ties > 0, "no ties: the audit exercised nothing"

    # Identical schedule, byte for byte — and not by luck of a quiet heap.
    assert audit_a.digest() == audit_b.digest()
    assert (audit_a.pops, audit_a.ties, audit_a.tie_groups,
            audit_a.max_group) == (audit_b.pops, audit_b.ties,
                                   audit_b.tie_groups, audit_b.max_group)

    # Observable results agree too (catches divergence the schedule-shape
    # digest could miss, e.g. payload sizing from a stray RNG).
    assert result_a.duration_ns == result_b.duration_ns
    assert result_a.bytes_moved == result_b.bytes_moved
    assert result_a.crucial == result_b.crucial


def test_ties_resolve_in_insertion_order():
    audit, _ = run_incast(seed=11)
    assert audit.anomalies == 0, audit.summary()


def test_different_seed_different_schedule():
    audit_a, _ = run_incast(seed=11)
    audit_b, _ = run_incast(seed=12)
    assert audit_a.digest() != audit_b.digest()


def test_second_driver_in_one_process_matches_first():
    """Regression for the XrPerf class-counter bug (xr-lint XR105).

    ``_sender_seq`` used to be class-level state: the Nth driver in one
    interpreter derived different RNG stream names ("...#4" instead of
    "...#1") than a fresh one, so back-to-back runs under one root seed
    produced different gap sequences.  Per-instance state makes run N
    identical to run 1.
    """
    results = []
    for _ in range(3):
        _, result = run_incast(seed=11)
        results.append((result.duration_ns, result.bytes_moved,
                        tuple(sorted(result.crucial.items()))))
    assert results[0] == results[1] == results[2]
