"""Yield-point races on the channel send/rendezvous/control paths.

Each test pins one of the stale-state defects this PR fixed, using a
controlled preemption window (a wrapped ``memcache.alloc`` that yields
deterministically, or an injected post failure) so the race fires on
every run.  On the pre-fix code each test fails with leaked MemCache
bytes, rendezvous state installed on a BROKEN channel, or phantom ack
bookkeeping.
"""

from repro.sim import MILLIS
from repro.xrdma.message import MessageKind
from tests.conftest import run_process
from tests.scenarios.conftest import assert_quiescent, settle
from tests.xrdma.conftest import connect_pair

LARGE = 256 * 1024


def _slow_alloc(cluster, ctx, entered):
    """Wrap ``ctx.memcache.alloc`` with a deterministic preemption window
    so another process can run between the alloc and its caller's resume
    (memcache only yields on arena growth, which connect priming already
    paid for — this restores the race window the defect needs)."""
    real_alloc = ctx.memcache.alloc

    def alloc(size):
        entered.append(size)
        yield cluster.sim.timeout(50_000)
        buffer = yield from real_alloc(size)
        return buffer

    ctx.memcache.alloc = alloc
    return real_alloc


def _break_when(cluster, entered, channel, reason):
    def breaker():
        while not entered:
            yield cluster.sim.timeout(1_000)
        channel.mark_broken(reason)

    run_process(cluster, breaker())


def test_rendezvous_alloc_vs_mark_broken_accounting(cluster):
    """Receiver side: the channel dies while the rendezvous landing
    buffer is being allocated.  The resumed generator must free the
    buffer and must not install rendezvous state or post READs on the
    BROKEN channel (the pre-fix code leaked the buffer)."""
    client, server, client_ch, server_ch = connect_pair(cluster, port=9600)
    entered = []
    _slow_alloc(cluster, server, entered)
    client.send_msg(client_ch, LARGE)
    _break_when(cluster, entered, server_ch,
                "injected during rendezvous alloc")
    settle(cluster, 500 * MILLIS)

    assert entered == [LARGE]                # the race window was exercised
    assert server_ch._rendezvous == {}
    assert server_ch.stats["rendezvous_reads"] == 0
    # Exact accounting: landing buffer freed, recv buffers swept by
    # mark_broken — nothing left in use on the receiver.
    assert server.memcache.in_use_bytes == 0

    client_ch.mark_broken("peer torn down")
    settle(cluster, 200 * MILLIS)
    assert_quiescent(client, server)


def test_announce_alloc_vs_mark_broken_accounting(cluster):
    """Sender side: the channel dies while the announce's source buffer
    is being allocated.  The resumed generator must free the buffer and
    return without posting, and pump() must not record a transmission
    (the pre-fix code stamped src_addr/src_rkey and posted the announce
    on the BROKEN channel, leaking the buffer)."""
    client, server, client_ch, server_ch = connect_pair(cluster, port=9610)
    entered = []
    _slow_alloc(cluster, client, entered)
    client.send_msg(client_ch, LARGE)
    _break_when(cluster, entered, client_ch,
                "injected during announce alloc")
    settle(cluster, 500 * MILLIS)

    assert entered == [LARGE]                # the race window was exercised
    assert client_ch.stats["tx_msgs"] == 0   # pump stopped cleanly
    assert client_ch._write_pending == {}
    assert client.memcache.in_use_bytes == 0

    server_ch.mark_broken("peer torn down")
    settle(cluster, 200 * MILLIS)
    assert_quiescent(client, server)


def test_control_post_failure_leaves_ack_bookkeeping_untouched(cluster):
    """A failed control post must not pretend the ack left: the window's
    sent-ack state and the acks_sent counter move only after the post
    succeeds (the pre-fix code bumped both before the yield)."""
    client, server, client_ch, server_ch = connect_pair(cluster, port=9620)
    for _ in range(3):
        client.send_msg(client_ch, 128)
    settle(cluster, 2 * MILLIS)              # delivered, acks still pending
    before_unacked = server_ch.window.unacked_arrivals()
    assert before_unacked > 0
    before = (server_ch.window.sent_ack, server_ch.stats["acks_sent"],
              server_ch.stats["nops_sent"])

    def failing_post(qp, wr):
        raise RuntimeError("injected post_send failure")

    server.verbs.post_send = failing_post

    def attempt():
        try:
            yield from server_ch.send_control(MessageKind.ACK)
        except RuntimeError:
            return "failed"
        return "sent"

    assert run_process(cluster, attempt()) == "failed"
    assert server_ch.window.unacked_arrivals() == before_unacked
    assert (server_ch.window.sent_ack, server_ch.stats["acks_sent"],
            server_ch.stats["nops_sent"]) == before

    # With the fault removed the same ack goes out and the bookkeeping
    # catches up — the failure really was the only thing holding it.
    del server.verbs.post_send
    run_process(cluster, server_ch.send_control(MessageKind.ACK))
    settle(cluster, 2 * MILLIS)
    assert server_ch.window.unacked_arrivals() == 0
    assert server_ch.stats["acks_sent"] == before[1] + 1

    client_ch.mark_broken("test teardown")
    server_ch.mark_broken("test teardown")
    settle(cluster, 200 * MILLIS)
    assert_quiescent(client, server)
