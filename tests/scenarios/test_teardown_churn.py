"""Channel teardown under queued load: the drop_all/drain budget races.

Two channels share the context's 4-slot WR budget; one dies mid-burst.
The dead channel's queued WRs are dropped, its in-flight completions race
the teardown, and the survivor must still receive every message — with
the budget balanced to zero at the end.
"""

from repro.sim import MILLIS
from tests.conftest import run_process
from tests.scenarios.conftest import assert_quiescent, close_channels, settle
from tests.xrdma.conftest import make_context


def test_teardown_under_queued_load(cluster):
    client = make_context(cluster, 0)
    server = make_context(cluster, 1)
    accepted = server.listen(9200)

    def connect_two():
        ch_a = yield from client.connect(1, 9200)
        srv_a = yield accepted.get()
        ch_b = yield from client.connect(1, 9200)
        srv_b = yield accepted.get()
        return ch_a, srv_a, ch_b, srv_b

    ch_a, srv_a, ch_b, srv_b = run_process(cluster, connect_two())

    n = 30
    for _ in range(n):
        client.send_msg(ch_a, 2048)
        client.send_msg(ch_b, 2048)
    settle(cluster, 50_000)             # some WRs in flight, most queued
    # Kill A on both ends mid-burst: drop_all() returns its budget slots
    # while late completions are still arriving.
    ch_a.mark_broken("injected mid-burst failure")
    srv_a.mark_broken("peer injected mid-burst failure")
    settle(cluster, 500 * MILLIS)

    # B was never touched: the shared budget must keep feeding it (the
    # seed stranded B's waiters and/or over-admitted after the race).
    assert srv_b.stats["rx_msgs"] == n
    assert ch_b.window.in_flight == 0

    close_channels(cluster, client)
    settle(cluster)
    assert_quiescent(client, server)
