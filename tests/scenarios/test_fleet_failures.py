"""Fault injection against the fleet supervisor itself.

The drills in :mod:`repro.fleet.drills` misbehave deterministically —
raise, ``os._exit``, run away inside the engine, or hang outside it —
and these tests pin down the supervisor contract: the sweep always
completes, every attempt is recorded with a reason, retry counts are
exact, and surviving runs stay violation-free.
"""

from repro.fleet.experiments import KB
from repro.fleet.pool import FleetPool
from repro.fleet.spec import ExperimentSpec
from repro.fleet.planner import plan
from repro.fleet.store import ResultStore


def sweep(tmp_path, specs, jobs=2, backoff_s=0.02):
    units = plan(specs)
    store = ResultStore(tmp_path / "sweep")
    store.begin(specs, units)
    pool = FleetPool(jobs=jobs, backoff_s=backoff_s)
    summary = pool.run(units, store)
    store.close()
    return units, store, summary


def healthy_spec(**kwargs):
    base = dict(name="control", scenario="drill-healthy",
                grid={"ticks": [5]}, seeds=[0], timeout_s=30.0,
                max_retries=2, max_events=100_000)
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestCrashIsolation:
    def test_crash_is_quarantined_with_exact_attempts(self, tmp_path):
        specs = [
            healthy_spec(),
            ExperimentSpec(name="crasher", scenario="drill-crashing",
                           grid={}, seeds=[0], timeout_s=30.0,
                           max_retries=2),
        ]
        units, store, summary = sweep(tmp_path, specs)

        # The sweep completed: every planned run has exactly one final
        # record, despite a worker dying on every crasher attempt.
        terminal = store.terminal_records()
        assert sorted(terminal) == sorted(u.run_id for u in units)

        crash_id = "crasher/-/s0"
        assert terminal[crash_id]["status"] == "crashed"
        assert "worker died" in terminal[crash_id]["reason"]

        # Exact accounting: initial attempt + max_retries retries, then
        # quarantine; each dead worker was replaced.
        assert summary.attempts_by_run[crash_id] == 3
        assert summary.crashed == 3
        assert summary.retries == 2
        assert summary.quarantined == 1
        assert summary.workers_respawned >= 3

        # The healthy control run rode along untouched.
        control = terminal["control/ticks=5/s0"]
        assert control["status"] == "ok"
        assert control["invariant_violations"] == 0
        assert control["metrics"] == {"ticks": 5}

    def test_flaky_crash_recovers_on_retry(self, tmp_path):
        specs = [ExperimentSpec(
            name="flaky", scenario="drill-flaky-crash",
            grid={"succeed_at": [1]}, seeds=[0], timeout_s=30.0,
            max_retries=2)]
        units, store, summary = sweep(tmp_path, specs)

        records = store.load_records()
        assert [r["status"] for r in records] == ["crashed", "ok"]
        assert [r["final"] for r in records] == [False, True]
        assert records[1]["metrics"] == {"recovered_at_attempt": 1}
        assert summary.attempts_by_run["flaky/succeed_at=1/s0"] == 2
        assert summary.retries == 1
        assert summary.quarantined == 0

    def test_raising_scenario_fails_without_killing_worker(self, tmp_path):
        specs = [
            healthy_spec(),
            ExperimentSpec(name="raiser", scenario="drill-raising",
                           grid={}, seeds=[0], timeout_s=30.0,
                           max_retries=0),
        ]
        units, store, summary = sweep(tmp_path, specs, jobs=1)

        terminal = store.terminal_records()
        raiser = terminal["raiser/-/s0"]
        assert raiser["status"] == "failed"
        assert "injected failure (seed 0)" in raiser["reason"]
        # An in-worker exception is caught in-process: the same worker
        # served both runs, so nothing crashed or respawned.
        assert summary.crashed == 0
        assert summary.workers_respawned == 0
        assert terminal["control/ticks=5/s0"]["status"] == "ok"


class TestRunawayContainment:
    def test_engine_runaway_dies_as_recorded_failure(self, tmp_path):
        """With max_events armed, an unbounded event loop becomes a
        reasoned ``failed`` record — no kill needed."""
        specs = [ExperimentSpec(
            name="runaway", scenario="drill-runaway", grid={}, seeds=[0],
            timeout_s=30.0, max_retries=0, max_events=5_000)]
        units, store, summary = sweep(tmp_path, specs, jobs=1)

        record = store.terminal_records()["runaway/-/s0"]
        assert record["status"] == "failed"
        assert "GuardExceeded" in record["reason"]
        assert summary.timeout == 0 and summary.workers_respawned == 0

    def test_hang_outside_engine_is_killed_and_recorded(self, tmp_path):
        """A scenario stuck outside the engine loop can only be stopped
        by the supervisor's SIGKILL deadline — the backstop path."""
        specs = [
            healthy_spec(),
            ExperimentSpec(name="hanger", scenario="drill-hang",
                           grid={}, seeds=[0], timeout_s=1.0,
                           max_retries=0),
        ]
        units, store, summary = sweep(tmp_path, specs)

        terminal = store.terminal_records()
        hang = terminal["hanger/-/s0"]
        assert hang["status"] == "timeout"
        assert "timeout_s=1.0" in hang["reason"]
        assert summary.timeout == 1
        assert summary.workers_respawned >= 1
        assert summary.retries == 0

        # The sweep still completed, and the survivor is clean.
        control = terminal["control/ticks=5/s0"]
        assert control["status"] == "ok"
        assert control["invariant_violations"] == 0


class TestSmallMsgSanity:
    def test_smoke_scenario_yields_clean_metrics(self, tmp_path):
        """One real (non-drill) scenario through the pool end to end:
        metrics present, digest recorded, zero violations."""
        specs = [ExperimentSpec(
            name="mini", scenario="smoke-incast",
            grid={"fragment_bytes": [16 * KB]}, seeds=[0],
            timeout_s=60.0, max_retries=1, max_events=2_000_000)]
        units, store, summary = sweep(tmp_path, specs, jobs=1)

        record = store.terminal_records()["mini/fragment_bytes=16384/s0"]
        assert record["status"] == "ok"
        assert record["digest"]
        assert record["events"] > 0
        assert record["invariant_violations"] == 0
        assert record["metrics"]["messages"] > 0
        assert summary.ok == 1 and summary.records == 1
