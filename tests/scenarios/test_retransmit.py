"""Middleware-level retransmits: duplicate arrivals must be idempotent.

The fault filter re-delivers ~30% of the server's inbound headers.  Small
messages must not be delivered twice, large ones must not start a second
rendezvous (the seed leaked the first read's buffer), and the window must
absorb every duplicate without wedging.
"""

from repro.analysis import ClockSync, FaultRule, Filter, Tracer
from repro.sim import MILLIS, SECONDS
from repro.xrdma import XrdmaConfig
from tests.conftest import run_process
from tests.scenarios.conftest import assert_quiescent, close_channels, settle
from tests.xrdma.conftest import connect_pair


def test_duplicate_arrivals_deliver_exactly_once(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster, port=9300)
    server.filter = Filter(cluster.rng.stream("scenario-dup"))
    server.filter.add_rule(FaultRule(duplicate_probability=0.3))

    n_small, n_large = 40, 10
    for _ in range(n_small):
        client.send_msg(client_ch, 512)
    for _ in range(n_large):
        client.send_msg(client_ch, 256 * 1024)   # rendezvous-read path
    total = n_small + n_large

    def drain():
        got = []
        while len(got) < total:
            got.extend(server.polling())
            yield cluster.sim.timeout(100_000)
        return got

    got = run_process(cluster, drain(), limit=60 * SECONDS)
    settle(cluster, 300 * MILLIS)                # let trailing duplicates land
    got.extend(server.polling())

    assert server.filter.duplicated > 0          # the fault actually fired
    assert len(got) == total                     # exactly once regardless
    # Delivery is strictly in sequence order, duplicates notwithstanding.
    assert [msg.payload_size for msg in got] == \
        [512] * n_small + [256 * 1024] * n_large
    assert server_ch._pending_delivery == {}
    assert server_ch._rendezvous == {}

    server.filter.clear()
    close_channels(cluster, client)
    settle(cluster)
    assert_quiescent(client, server)


def test_traced_duplicates_record_spans_exactly_once(cluster):
    """XR-Trace under middleware retransmits: duplicate arrivals must not
    double-record span marks, delivery records, or ack totals — exactly
    one complete record per message on each side."""
    config = XrdmaConfig(req_rsp_mode=True, trace_sample_mask=1)
    client, server, client_ch, server_ch = connect_pair(
        cluster, port=9310, client_config=config, server_config=config)
    sync = ClockSync(cluster.rng)
    client_tracer = Tracer(client, sync)
    server_tracer = Tracer(server, sync)
    server.filter = Filter(cluster.rng.stream("scenario-dup-traced"))
    server.filter.add_rule(FaultRule(duplicate_probability=0.4))

    n_small, n_large = 30, 6
    for _ in range(n_small):
        client.send_msg(client_ch, 512)
    for _ in range(n_large):
        client.send_msg(client_ch, 256 * 1024)
    total = n_small + n_large

    def drain():
        got = []
        while len(got) < total:
            got.extend(server.polling())
            yield cluster.sim.timeout(100_000)
        return got

    got = run_process(cluster, drain(), limit=60 * SECONDS)
    settle(cluster, 300 * MILLIS)                # trailing duplicates + acks
    got.extend(server.polling())

    assert server.filter.duplicated > 0          # the fault actually fired
    assert len(got) == total
    # Exactly one sender record per message, every one finalized, and the
    # histograms counted each message exactly once.
    assert len(client_tracer.records) == total
    assert all(record.complete
               for record in client_tracer.records.values())
    assert client_tracer.latency.count == total
    assert len(server_tracer.records) == total
    assert server_tracer.network_latency.count == total
    # Spans still sum exactly despite duplicate traversals (the fatal
    # zero-residual invariant also enforced this during finalize).
    for record in client_tracer.records.values():
        assert record.residual_ns == 0
        assert sum(d for _, d in record.spans) == record.total_ns

    server.filter.clear()
    close_channels(cluster, client)
    settle(cluster)
    assert_quiescent(client, server)
