"""Memory-cache churn: shrink cycles while buffers stay live.

Every round allocates a burst, keeps one buffer alive across the shrink,
and frees the rest.  The Fig. 11c accounting (occupied vs in-use) must be
exact after every round, and shrink must never reclaim an arena that still
backs a live buffer.
"""

from repro.analysis.invariants import verify_context
from repro.sim import SECONDS
from tests.conftest import run_process
from tests.scenarios.conftest import assert_quiescent
from tests.xrdma.conftest import make_context


def test_shrink_churn_keeps_exact_accounting(cluster):
    ctx = make_context(cluster, 0)
    held = []

    def churn():
        for _ in range(8):
            burst = []
            for _ in range(6):
                buffer = yield from ctx.memcache.alloc(1 << 20)
                burst.append(buffer)
            held.append(burst.pop(0))     # survives this round's shrink
            for buffer in burst:
                ctx.memcache.free(buffer)
            ctx.memcache.shrink()
            assert ctx.memcache.in_use_bytes == sum(b.size for b in held)
            assert verify_context(ctx) == []

    run_process(cluster, churn(), limit=30 * SECONDS)
    assert ctx.memcache.shrink_count > 0  # churn actually reclaimed arenas
    for buffer in held:
        ctx.memcache.free(buffer)         # every held buffer still valid
    ctx.memcache.shrink()
    assert ctx.memcache.mr_count == 1     # one arena kept warm
    assert_quiescent(ctx)
