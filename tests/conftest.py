"""Shared fixtures: thin wrappers over :mod:`repro.cluster`."""

import pytest

from repro.analysis import invariants
from repro.cluster import Cluster, Host, build_cluster  # noqa: F401 (re-export)


@pytest.fixture(autouse=True)
def fatal_invariants():
    """Every test runs under a fatal-mode invariant registry.

    Any protocol invariant tripped mid-scenario raises
    :class:`~repro.analysis.invariants.InvariantError` (an AssertionError
    subclass) right at the offending call site instead of surfacing as a
    confusing downstream failure.
    """
    registry = invariants.install(mode="fatal")
    yield registry
    invariants.uninstall()


def run_process(cluster: Cluster, generator, limit=None):
    """Spawn a process and run the simulation until it returns."""
    proc = cluster.sim.spawn(generator)
    return cluster.sim.run_until_event(proc, limit=limit)


def establish(cluster: Cluster, client_id: int, server_id: int,
              service_port: int = 7000, sq_depth: int = None,
              rq_depth: int = None):
    """CM handshake between two hosts; returns (client_conn, server_conn)."""
    client, server = cluster.host(client_id), cluster.host(server_id)

    s_pd = server.verbs.alloc_pd()
    s_cq = server.verbs.create_cq()
    listener = server.cm.listen(service_port, s_pd, s_cq, s_cq)

    c_pd = client.verbs.alloc_pd()
    c_cq = client.verbs.create_cq()

    def connector():
        conn = yield from client.cm.connect(
            server_id, service_port, c_pd, c_cq, c_cq)
        server_conn = yield listener.accepted.get()
        return conn, server_conn

    conn, server_conn = run_process(cluster, connector())
    if sq_depth or rq_depth:  # re-shape depths for specific tests
        for c in (conn, server_conn):
            if sq_depth:
                c.qp.sq_depth = sq_depth
            if rq_depth:
                c.qp.rq_depth = rq_depth
    return conn, server_conn


@pytest.fixture
def cluster() -> Cluster:
    return build_cluster(4)
