"""The cluster-scale scenario family: geometry, spec wiring, and the
rack-sharded emulation path end to end (at reduced scale)."""

import pytest

from repro.fleet.experiments import spec_names, specs_for
from repro.fleet.runner import run_scenario_inline
from repro.fleet.scenarios import RACK_HOSTS, cluster_dims


def test_cluster_dims_geometry():
    dims = cluster_dims(1024)
    assert dims == {"n_pods": 8, "tors_per_pod": 8, "hosts_per_tor": 16,
                    "leaves_per_pod": 2, "n_spines": 2}
    dims = cluster_dims(256)
    assert dims["n_pods"] == 2 and dims["tors_per_pod"] == 8
    for n_hosts in (32, 128, 256, 512, 1024, 2048):
        dims = cluster_dims(n_hosts)
        capacity = (dims["n_pods"] * dims["tors_per_pod"]
                    * dims["hosts_per_tor"])
        assert capacity >= n_hosts


def test_cluster_scale_spec_set_registered():
    assert "cluster-scale" in spec_names()
    quick = specs_for(["cluster-scale"], quick=True)
    assert {spec.name for spec in quick} == \
        {"cluster-connect-storm", "cluster-incast"}
    for spec in quick:
        assert spec.grid["n_hosts"] == [256]
        assert len(spec.expand()) <= 2         # CI-smoke sized
    full = specs_for(["cluster-scale"], quick=False)
    for spec in full:
        assert spec.grid["n_hosts"] == [1024]
        assert spec.grid["rack"] == list(range(1024 // RACK_HOSTS))


def test_connect_storm_shard_runs_and_crosses_spine():
    record = run_scenario_inline(
        "cluster-connect-storm",
        {"n_hosts": 256, "rack": 0, "connects_per_host": 1})
    metrics = record["metrics"]
    assert metrics["connects"] == RACK_HOSTS
    assert metrics["spine_tx_bytes"] > 0       # gateway sits one pod away
    assert metrics["background_flows"] == 256 // RACK_HOSTS - 2
    assert metrics["attached_hosts"] == RACK_HOSTS + 1
    assert metrics["emulated_hosts"] == 256
    assert metrics["fabric_bytes_per_node"] > 0
    assert record["events"] > 0


def test_cluster_incast_shard_contends_with_background():
    record = run_scenario_inline(
        "cluster-incast",
        {"n_hosts": 256, "rack": 9, "size": 8192, "messages": 1})
    metrics = record["metrics"]
    assert metrics["goodput_gbps"] > 0
    assert metrics["messages"] == RACK_HOSTS
    # Every emulated host outside the shard converges on the sink.
    assert metrics["background_flows"] == 256 - (RACK_HOSTS + 1)
    assert metrics["background_bytes"] > metrics["foreground_bytes"]
    assert metrics["spine_tx_bytes"] > 0


def test_cluster_scenarios_are_deterministic():
    params = {"n_hosts": 256, "rack": 3, "connects_per_host": 1}
    first = run_scenario_inline("cluster-connect-storm", params)
    second = run_scenario_inline("cluster-connect-storm", params)
    assert first["digest"] == second["digest"]
    assert first["metrics"] == second["metrics"]


def test_rack_shard_validation():
    with pytest.raises(Exception):
        run_scenario_inline("cluster-connect-storm",
                            {"n_hosts": 256, "rack": 99})
