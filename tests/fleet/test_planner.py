"""Shard planner: stable partition, worker-count independence."""

import pytest

from repro.fleet.planner import plan, shard_filter, shard_histogram, shard_of
from repro.fleet.spec import ExperimentSpec


def two_specs():
    return [
        ExperimentSpec(name="beta", scenario="drill-healthy",
                       grid={"x": [1, 2, 3]}, seeds=[0, 1]),
        ExperimentSpec(name="alpha", scenario="drill-healthy",
                       grid={"y": [4, 5]}, seeds=[0]),
    ]


class TestPlan:
    def test_plan_sorted_by_experiment_name(self):
        units = plan(two_specs())
        names = [u.experiment for u in units]
        assert names == sorted(names)
        assert len(units) == 6 + 2

    def test_duplicate_experiment_name_rejected(self):
        spec = two_specs()[0]
        with pytest.raises(ValueError):
            plan([spec, spec])


class TestSharding:
    def test_shard_of_is_stable_across_calls(self):
        # Stability matters: Python's own hash() is salted per process.
        assert shard_of("smoke/fragment_bytes=16384/s0", 4) \
            == shard_of("smoke/fragment_bytes=16384/s0", 4)

    def test_shards_partition_the_plan(self):
        units = plan(two_specs())
        for total in (1, 2, 3, 4):
            shards = [shard_filter(units, k, total) for k in range(total)]
            collected = [u.run_id for shard in shards for u in shard]
            assert sorted(collected) == sorted(u.run_id for u in units)

    def test_shard_preserves_canonical_order(self):
        units = plan(two_specs())
        shard = shard_filter(units, 0, 2)
        ids = [u.run_id for u in shard]
        full = [u.run_id for u in units]
        assert ids == [run_id for run_id in full if run_id in set(ids)]

    def test_histogram_counts_sum_to_plan(self):
        units = plan(two_specs())
        hist = shard_histogram(units, 3)
        assert sum(hist) == len(units)

    def test_bad_shard_args_rejected(self):
        units = plan(two_specs())
        with pytest.raises(ValueError):
            shard_filter(units, 2, 2)
        with pytest.raises(ValueError):
            shard_filter(units, 0, 0)
