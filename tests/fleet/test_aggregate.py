"""Aggregator: deterministic stats, wall-clock exclusion, missing runs."""

import pytest

from repro.fleet.aggregate import (aggregate_records, aggregate_tables,
                                   metric_stats, percentile)
from repro.fleet.spec import ExperimentSpec
from repro.fleet.store import canonical_json


def units_for(grid=None, seeds=(0, 1)):
    return ExperimentSpec(name="exp", scenario="drill-healthy",
                          grid=grid if grid is not None else {"x": [1, 2]},
                          seeds=list(seeds)).expand()


def term(unit, status="ok", metrics=None, wall_s=0.0, **extra):
    record = {
        "run_id": unit.run_id, "experiment": unit.experiment,
        "scenario": unit.scenario, "params": unit.params_dict,
        "seed": unit.seed, "attempt": 0, "status": status, "reason": "",
        "metrics": metrics or {}, "digest": f"d-{unit.run_id}",
        "events": 10, "tie_anomalies": 0, "invariant_violations": 0,
        "monitor": {}, "wall_s": wall_s, "final": True,
    }
    record.update(extra)
    return record


class TestPercentile:
    def test_nearest_rank_is_an_observed_value(self):
        values = [5.0, 1.0, 3.0]
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert percentile(values, q) in values

    def test_known_ranks(self):
        values = list(range(1, 11))      # 1..10
        assert percentile(values, 0.50) == 5
        assert percentile(values, 0.90) == 9
        assert percentile(values, 1.00) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_metric_stats_shape(self):
        stats = metric_stats([2.0, 4.0])
        assert stats == {"n": 2, "mean": 3.0, "p50": 2.0, "p90": 4.0,
                         "min": 2.0, "max": 4.0}


class TestAggregate:
    def test_wall_clock_fields_never_enter_aggregate(self):
        units = units_for()
        terminal = {u.run_id: term(u, wall_s=123.456, worker=9)
                    for u in units}
        text = canonical_json(aggregate_records(units, terminal))
        assert "wall_s" not in text
        assert "123.456" not in text
        assert '"worker"' not in text

    def test_aggregate_bytes_ignore_record_arrival_order(self):
        units = units_for()
        terminal = {u.run_id: term(u, metrics={"m": float(u.seed)})
                    for u in units}
        shuffled = dict(reversed(list(terminal.items())))
        assert canonical_json(aggregate_records(units, terminal)) \
            == canonical_json(aggregate_records(units, shuffled))

    def test_missing_runs_reported_not_dropped(self):
        units = units_for()
        terminal = {units[0].run_id: term(units[0])}
        aggregate = aggregate_records(units, terminal)
        assert aggregate["totals"]["runs"] == len(units)
        assert aggregate["totals"]["missing"] == len(units) - 1
        assert aggregate["runs"][units[-1].run_id]["status"] == "missing"

    def test_failed_runs_excluded_from_metric_stats(self):
        units = units_for(grid={"x": [1]}, seeds=(0, 1))
        terminal = {
            units[0].run_id: term(units[0], metrics={"m": 1.0}),
            units[1].run_id: term(units[1], status="failed",
                                  metrics={"m": 999.0}),
        }
        group = aggregate_records(units, terminal)["experiments"]["exp"]
        stats = group["x=1"]["metrics"]["m"]
        assert stats["n"] == 1 and stats["max"] == 1.0

    def test_bool_metrics_not_averaged(self):
        units = units_for(grid={"x": [1]}, seeds=(0,))
        terminal = {units[0].run_id: term(units[0],
                                          metrics={"flag": True, "m": 2.0})}
        metrics = aggregate_records(units, terminal)["experiments"]["exp"][
            "x=1"]["metrics"]
        assert "flag" not in metrics and "m" in metrics

    def test_retry_accounting_in_totals(self):
        units = units_for(grid={"x": [1]}, seeds=(0,))
        terminal = {units[0].run_id: term(units[0])}
        totals = aggregate_records(units, terminal,
                                   {units[0].run_id: 3})["totals"]
        assert totals["retried_attempts"] == 2

    def test_tables_render_every_experiment(self):
        units = units_for()
        terminal = {u.run_id: term(u, metrics={"m": 1.5}) for u in units}
        text = aggregate_tables(aggregate_records(units, terminal))
        assert "===== exp =====" in text
        assert "x=1" in text and "x=2" in text
        assert "totals:" in text
