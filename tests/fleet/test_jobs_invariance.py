"""The headline fleet guarantee: ``--jobs N`` never changes the results.

Runs the committed ``smoke`` spec set through the real CLI twice — one
worker, then four — and byte-compares ``aggregate.json``.  Everything the
guarantee rests on is exercised for real: forked workers, out-of-order
completion, the JSONL store, and the canonical aggregator.
"""

import json
from pathlib import Path

from repro.tools import xr_fleet


def run_sweep(tmp_path: Path, jobs: int) -> Path:
    out = tmp_path / f"jobs{jobs}"
    code = xr_fleet.main(["run", "--spec", "smoke", "--jobs", str(jobs),
                          "--out", str(out), "--json"])
    assert code == 0, f"smoke sweep at --jobs {jobs} did not end clean"
    return out


def test_aggregate_bytes_identical_across_jobs(tmp_path):
    solo = run_sweep(tmp_path, jobs=1)
    fleet = run_sweep(tmp_path, jobs=4)
    solo_bytes = (solo / "aggregate.json").read_bytes()
    fleet_bytes = (fleet / "aggregate.json").read_bytes()
    assert solo_bytes == fleet_bytes

    # The guarantee is meaningful only if the sweep actually did work:
    # every planned run finished ok and produced a schedule digest.
    aggregate = json.loads(solo_bytes)
    totals = aggregate["totals"]
    assert totals["runs"] == totals["ok"] > 0
    assert totals["invariant_violations"] == 0
    assert totals["tie_anomalies"] == 0
    for run in aggregate["runs"].values():
        assert run["digest"], "every ok run must carry a schedule digest"

    # And the manifest records what differed (jobs) without polluting the
    # invariant artifact.
    solo_manifest = json.loads((solo / "manifest.json").read_text())
    fleet_manifest = json.loads((fleet / "manifest.json").read_text())
    assert solo_manifest["jobs"] == 1
    assert fleet_manifest["jobs"] == 4


def test_shards_union_to_the_full_plan(tmp_path):
    """--shard 0/2 and 1/2 together cover exactly the full smoke plan."""
    seen = []
    for shard in ("0/2", "1/2"):
        out = tmp_path / f"shard-{shard.replace('/', '-')}"
        code = xr_fleet.main(["run", "--spec", "smoke", "--jobs", "2",
                              "--shard", shard, "--out", str(out), "--json"])
        assert code == 0
        aggregate = json.loads((out / "aggregate.json").read_text())
        seen.extend(aggregate["runs"])
    full = tmp_path / "full"
    code = xr_fleet.main(["run", "--spec", "smoke", "--jobs", "2",
                          "--out", str(full), "--json"])
    assert code == 0
    aggregate = json.loads((full / "aggregate.json").read_text())
    assert sorted(seen) == sorted(aggregate["runs"])
