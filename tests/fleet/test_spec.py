"""Spec expansion: canonical ordering, run_id identity, validation."""

import pytest

from repro.fleet.spec import ExperimentSpec, format_params


def make_spec(**kwargs):
    base = dict(name="exp", scenario="drill-healthy",
                grid={"b": [1, 2], "a": [10]}, seeds=[0, 1])
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestExpansion:
    def test_cartesian_product_times_seeds(self):
        units = make_spec().expand()
        assert len(units) == 2 * 1 * 2

    def test_axes_sorted_values_declared_order(self):
        ids = [u.run_id for u in make_spec().expand()]
        assert ids == [
            "exp/a=10,b=1/s0", "exp/a=10,b=1/s1",
            "exp/a=10,b=2/s0", "exp/a=10,b=2/s1",
        ]

    def test_run_id_independent_of_grid_declaration_order(self):
        forward = make_spec(grid={"a": [10], "b": [1, 2]}).expand()
        reverse = make_spec(grid={"b": [1, 2], "a": [10]}).expand()
        assert [u.run_id for u in forward] == [u.run_id for u in reverse]

    def test_empty_grid_one_unit_per_seed(self):
        units = make_spec(grid={}, seeds=[7]).expand()
        assert [u.run_id for u in units] == ["exp/-/s7"]
        assert units[0].params_dict == {}

    def test_unit_carries_spec_budgets(self):
        unit = make_spec(timeout_s=9.0, max_retries=5,
                         max_events=123).expand()[0]
        assert (unit.timeout_s, unit.max_retries, unit.max_events) \
            == (9.0, 5, 123)

    def test_as_task_round_trips_params(self):
        unit = make_spec().expand()[0]
        task = unit.as_task(attempt=3)
        assert task["params"] == unit.params_dict
        assert task["attempt"] == 3
        assert task["run_id"] == unit.run_id


class TestValidation:
    def test_rejects_slash_in_name(self):
        with pytest.raises(ValueError):
            make_spec(name="a/b")

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            make_spec(seeds=[])

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            make_spec(grid={"a": []})

    def test_rejects_non_scalar_grid_values(self):
        with pytest.raises(TypeError):
            make_spec(grid={"a": [[1, 2]]})


class TestFormatParams:
    def test_sorted_and_typed(self):
        slug = format_params({"z": 1, "a": True, "m": "x", "f": 1.5})
        assert slug == "a=true,f=1.5,m=x,z=1"

    def test_bool_not_rendered_as_int(self):
        assert format_params({"fc": False}) == "fc=false"
