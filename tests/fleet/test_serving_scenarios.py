"""XR-Serve fleet scenarios: wiring, reproducibility, interference."""

import pytest

from repro.fleet.experiments import specs_for
from repro.fleet.runner import execute_unit, resolve_scenario, \
    run_scenario_inline

QUICK = {"duration_ms": 20, "window_ms": 5}


def test_scenarios_resolve_by_name():
    assert resolve_scenario("serving-mix")
    assert resolve_scenario("serving-interference")


def test_serving_spec_set_exists():
    specs = specs_for(["serving"], quick=True)
    names = {spec.name for spec in specs}
    assert names == {"serving-mix", "serving-interference"}
    for spec in specs:
        assert spec.expand(), "spec expands to no runs"


def test_mix_metrics_and_windows():
    record = run_scenario_inline("serving-mix",
                                 {"policy": "round-robin", **QUICK}, seed=0)
    metrics = record["metrics"]
    assert metrics["mix_completed"] > 0
    assert metrics["mix_errors"] == 0
    assert metrics["mix_p99_us"] > 0
    assert metrics["mix_window_digest"]
    rows = record["windows"]
    assert rows and all(row["tenant"] == "mix" for row in rows)
    assert any(row["stable"] for row in rows)


def test_same_seed_identical_window_digest_and_schedule():
    a = run_scenario_inline("serving-mix", {"policy": "sharded", **QUICK},
                            seed=3)
    b = run_scenario_inline("serving-mix", {"policy": "sharded", **QUICK},
                            seed=3)
    assert a["metrics"]["mix_window_digest"] == \
        b["metrics"]["mix_window_digest"]
    assert a["digest"] == b["digest"]
    assert a["windows"] == b["windows"]


def test_interference_degrades_victim_p99():
    quiet = run_scenario_inline("serving-interference",
                                {"aggressor": 0, **QUICK}, seed=0)
    noisy = run_scenario_inline("serving-interference",
                                {"aggressor": 1, **QUICK}, seed=0)
    p99_quiet = quiet["metrics"]["b_p99_us"]
    p99_noisy = noisy["metrics"]["b_p99_us"]
    assert p99_noisy > 2 * p99_quiet, (
        f"aggressor did not degrade the victim: {p99_quiet} -> {p99_noisy}")
    # The degradation is attributed: some traced segment inflated too.
    seg_keys = [key for key in noisy["metrics"] if key.startswith("seg_")]
    assert seg_keys
    inflated = [key for key in seg_keys
                if noisy["metrics"][key] > 2 * quiet["metrics"][key]]
    assert inflated, "no traced segment accounts for the p99 inflation"


def test_interference_traces_are_tenant_tagged():
    record = run_scenario_inline("serving-interference",
                                 {"aggressor": 1, **QUICK}, seed=0)
    traces = record["traces"]
    tagged = [trace for trace in traces if trace.get("tenant") == "B"]
    assert tagged, "no tenant-tagged trace records"
    # Only the victim samples; nothing should carry another tenant tag.
    assert all(trace.get("tenant", "B") == "B" for trace in traces)


def test_failed_tenant_spec_is_a_failed_run_not_a_crash():
    record = execute_unit({
        "run_id": "t/serving-mix/bad", "experiment": "t",
        "scenario": "serving-mix",
        "params": {"policy": "no-such-policy", **QUICK},
        "seed": 0, "attempt": 0, "timeout_s": None, "max_events": None,
    })
    assert record["status"] == "failed"
    assert "policy" in record["reason"]
