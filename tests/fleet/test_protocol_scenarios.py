"""Protocol-ablation fleet scenarios: wiring, axes, reproducibility."""

from repro.fleet.experiments import spec_names, specs_for
from repro.fleet.runner import resolve_scenario, run_scenario_inline
from repro.fleet.protocol import protocol_config


def test_scenarios_resolve_by_name():
    assert resolve_scenario("protocol-pingpong")
    assert resolve_scenario("protocol-incast")
    assert resolve_scenario("protocol-serving")


def test_protocol_ablation_spec_set():
    assert "protocol-ablation" in spec_names()
    specs = specs_for(["protocol-ablation"], quick=True)
    names = {spec.name for spec in specs}
    assert names == {"protocol-pingpong", "protocol-incast",
                     "protocol-serving"}
    for spec in specs:
        units = spec.expand()
        assert units, "spec expands to no runs"
        variants = {dict(unit.params)["rendezvous_variant"]
                    for unit in units}
        assert variants == {"read", "write"}   # every workload sweeps both


def test_protocol_config_maps_all_axes():
    config = protocol_config({"rendezvous_variant": "write",
                              "small_msg_size": 1024,
                              "fragment_bytes": 16 * 1024,
                              "inflight_depth": 8,
                              "unrelated": "ignored"})
    assert config.rendezvous_variant == "write"
    assert config.small_msg_size == 1024
    assert config.fragment_bytes == 16 * 1024
    assert config.inflight_depth == 8
    assert protocol_config({}).rendezvous_variant == "read"


def test_pingpong_rendezvous_counters_follow_the_variant():
    large = {"size": 256 * 1024, "iterations": 8}
    read = run_scenario_inline("protocol-pingpong",
                               {"rendezvous_variant": "read", **large},
                               seed=0)
    write = run_scenario_inline("protocol-pingpong",
                                {"rendezvous_variant": "write", **large},
                                seed=0)
    assert read["metrics"]["rtt_us"] > 0
    assert write["metrics"]["rtt_us"] > 0
    # The read variant RDMA-Reads on the server channel; the write
    # variant RDMA-Writes from the client channel.
    assert read["metrics"]["rendezvous_reads"] > 0
    assert read["metrics"]["rendezvous_writes"] == 0
    assert write["metrics"]["rendezvous_writes"] > 0
    assert write["metrics"]["rendezvous_reads"] == 0


def test_same_seed_same_schedule_per_variant():
    params = {"rendezvous_variant": "write", "size": 256 * 1024,
              "iterations": 6}
    a = run_scenario_inline("protocol-pingpong", params, seed=5)
    b = run_scenario_inline("protocol-pingpong", params, seed=5)
    assert a["digest"] == b["digest"]
    assert a["metrics"] == b["metrics"]


def test_incast_runs_under_both_variants():
    small = {"n_sources": 2, "streams_per_source": 2, "messages": 2,
             "size": 128 * 1024}
    for variant in ("read", "write"):
        record = run_scenario_inline(
            "protocol-incast", {"rendezvous_variant": variant, **small},
            seed=0)
        assert record["metrics"]["goodput_gbps"] > 0
        assert record["metrics"]["messages"] == 8
