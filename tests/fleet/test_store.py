"""Result store: JSONL durability, terminal selection, canonical bytes."""

import json

from repro.fleet.spec import ExperimentSpec
from repro.fleet.store import ResultStore, canonical_json


def spec():
    return ExperimentSpec(name="exp", scenario="drill-healthy",
                          grid={"x": [1, 2]}, seeds=[0])


def record(run_id, attempt=0, status="ok", final=True):
    return {"run_id": run_id, "attempt": attempt, "status": status,
            "final": final}


class TestStore:
    def test_begin_persists_plan(self, tmp_path):
        store = ResultStore(tmp_path / "sweep")
        units = spec().expand()
        store.begin([spec()], units)
        store.close()
        plan = store.load_plan()
        assert plan["units"] == [u.run_id for u in units]
        assert plan["specs"][0]["name"] == "exp"

    def test_append_then_reload_in_order(self, tmp_path):
        store = ResultStore(tmp_path / "sweep")
        store.begin([spec()], spec().expand())
        store.append(record("exp/x=1/s0"))
        store.append(record("exp/x=2/s0", status="failed"))
        store.close()
        statuses = [r["status"] for r in store.load_records()]
        assert statuses == ["ok", "failed"]

    def test_terminal_picks_only_final_records(self, tmp_path):
        store = ResultStore(tmp_path / "sweep")
        store.begin([spec()], spec().expand())
        store.append(record("exp/x=1/s0", attempt=0, status="failed",
                            final=False))
        store.append(record("exp/x=1/s0", attempt=1, status="ok"))
        store.close()
        terminal = store.terminal_records()
        assert list(terminal) == ["exp/x=1/s0"]
        assert terminal["exp/x=1/s0"]["attempt"] == 1

    def test_torn_tail_is_tolerated(self, tmp_path):
        store = ResultStore(tmp_path / "sweep")
        store.begin([spec()], spec().expand())
        store.append(record("exp/x=1/s0"))
        store.close()
        with open(store.runs_path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "exp/x=2/s0", "status": "ok"')
        assert len(store.load_records()) == 1

    def test_traces_split_into_own_artifact(self, tmp_path):
        store = ResultStore(tmp_path / "sweep")
        store.begin([spec()], spec().expand())
        traced = record("exp/x=1/s0")
        traced["trace"] = {"records": 2, "completed": 2}
        traced["traces"] = [{"trace_id": 1, "total_ns": 10},
                            {"trace_id": 2, "total_ns": 20}]
        store.append(traced)
        store.append(record("exp/x=2/s0"))      # untraced record: no lines
        store.close()
        # The run record keeps the rollup but not the per-trace bulk.
        records = store.load_records()
        assert records[0]["trace"] == {"records": 2, "completed": 2}
        assert "traces" not in records[0]
        # traces.jsonl carries one stamped line per trace.
        traces = store.load_traces()
        assert [t["trace_id"] for t in traces] == [1, 2]
        assert all(t["run_id"] == "exp/x=1/s0" for t in traces)
        assert all(t["attempt"] == 0 for t in traces)

    def test_begin_clears_stale_traces(self, tmp_path):
        store = ResultStore(tmp_path / "sweep")
        store.begin([spec()], spec().expand())
        traced = record("exp/x=1/s0")
        traced["traces"] = [{"trace_id": 1}]
        store.append(traced)
        store.close()
        store.begin([spec()], spec().expand())  # fresh sweep, same dir
        store.close()
        assert store.load_traces() == []

    def test_append_reopens_after_close(self, tmp_path):
        # An `aggregate` verb run after an interrupted sweep must be able
        # to keep appending without clobbering the log.
        store = ResultStore(tmp_path / "sweep")
        store.begin([spec()], spec().expand())
        store.append(record("exp/x=1/s0"))
        store.close()
        store.append(record("exp/x=2/s0"))
        store.close()
        assert len(store.load_records()) == 2


class TestCanonicalJson:
    def test_sorted_keys_and_trailing_newline(self):
        text = canonical_json({"b": 1, "a": {"z": 2, "y": 3}})
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"b": 1, "a": {"z": 2, "y": 3}}

    def test_identical_payloads_identical_bytes(self):
        one = canonical_json({"k": [1, 2], "j": "v"})
        two = canonical_json({"j": "v", "k": [1, 2]})
        assert one == two
