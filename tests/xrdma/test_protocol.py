"""Per-strategy conformance suite for the pluggable messaging protocol.

Every rendezvous variant must satisfy the same contract the paper's
receiver-Read design does: strictly in-order delivery across mixed
eager/rendezvous traffic, idempotence under middleware retransmits (a
40% duplicate filter), and exact resource accounting at teardown —
whether the teardown is orderly or a mid-transfer failure.  The
Write-with-notify variant additionally proves XR-Trace span chains stay
zero-residual (its CTS/FIN control headers must not double-mark spans).
"""

import pytest

from repro.analysis import ClockSync, FaultRule, Filter, Tracer
from repro.sim import MILLIS, SECONDS
from repro.xrdma import XrdmaConfig
from repro.xrdma.config import ConfigError
from repro.xrdma.protocol import (EagerStrategy, ProtocolPolicy,
                                  ReadRendezvous, WriteRendezvous,
                                  rendezvous_variant_names)
from tests.conftest import run_process
from tests.scenarios.conftest import assert_quiescent, close_channels, settle
from tests.xrdma.conftest import connect_pair

VARIANTS = rendezvous_variant_names()
LARGE = 256 * 1024


def _variant_pair(cluster, variant, port, **overrides):
    return connect_pair(
        cluster, port=port,
        client_config=XrdmaConfig(rendezvous_variant=variant, **overrides),
        server_config=XrdmaConfig(rendezvous_variant=variant, **overrides))


def _drain(cluster, server, total, limit=60 * SECONDS):
    def drainer():
        got = []
        while len(got) < total:
            got.extend(server.polling())
            yield cluster.sim.timeout(100_000)
        return got

    return run_process(cluster, drainer(), limit=limit)


# --------------------------------------------------------------- policy unit
def test_policy_selects_eager_below_threshold_and_variant_above():
    policy = ProtocolPolicy(XrdmaConfig(small_msg_size=1024))
    assert isinstance(policy.eager, EagerStrategy)
    assert isinstance(policy.rendezvous, ReadRendezvous)
    assert not policy.is_large(1024)      # boundary stays eager (≤)
    assert policy.is_large(1025)
    write_policy = ProtocolPolicy(XrdmaConfig(rendezvous_variant="write"))
    assert isinstance(write_policy.rendezvous, WriteRendezvous)


def test_registered_variants_and_config_validation():
    assert VARIANTS == ["read", "write"]
    with pytest.raises(ConfigError):
        XrdmaConfig(rendezvous_variant="telepathy")


# ------------------------------------------------------------- conformance
@pytest.mark.parametrize("variant", VARIANTS)
def test_in_order_delivery_across_eager_and_rendezvous(cluster, variant):
    """Small messages must not overtake an earlier large transfer."""
    client, server, client_ch, server_ch = _variant_pair(
        cluster, variant, port=9500)
    sizes = [512, LARGE, 64, 300_000, 2048, LARGE, 128]
    for size in sizes:
        client.send_msg(client_ch, size)

    got = _drain(cluster, server, len(sizes))
    settle(cluster, 300 * MILLIS)         # trailing acks free src buffers
    assert [msg.payload_size for msg in got] == sizes
    assert server_ch._rendezvous == {}
    assert client_ch._write_pending == {}

    close_channels(cluster, client)
    settle(cluster)
    assert_quiescent(client, server)


@pytest.mark.parametrize("variant", VARIANTS)
def test_duplicate_arrivals_are_idempotent(cluster, variant):
    """A 40% duplicate filter on *both* ends: announces, data notifies,
    CTS grants, and acks may all be re-delivered — delivery stays
    exactly-once and in order, and no rendezvous state is re-created."""
    client, server, client_ch, server_ch = _variant_pair(
        cluster, variant, port=9510)
    server.filter = Filter(cluster.rng.stream("protocol-dup-server"))
    server.filter.add_rule(FaultRule(duplicate_probability=0.4))
    client.filter = Filter(cluster.rng.stream("protocol-dup-client"))
    client.filter.add_rule(FaultRule(duplicate_probability=0.4))

    n_small, n_large = 30, 8
    for _ in range(n_small):
        client.send_msg(client_ch, 512)
    for _ in range(n_large):
        client.send_msg(client_ch, LARGE)
    total = n_small + n_large

    got = _drain(cluster, server, total)
    settle(cluster, 300 * MILLIS)            # let trailing duplicates land
    got.extend(server.polling())

    assert server.filter.duplicated > 0      # the fault actually fired
    assert len(got) == total                 # exactly once regardless
    assert [msg.payload_size for msg in got] == \
        [512] * n_small + [LARGE] * n_large
    assert server_ch._pending_delivery == {}
    assert server_ch._rendezvous == {}
    assert client_ch._write_pending == {}

    server.filter.clear()
    client.filter.clear()
    close_channels(cluster, client)
    settle(cluster)
    assert_quiescent(client, server)


@pytest.mark.parametrize("variant", VARIANTS)
def test_teardown_accounting_mid_transfer(cluster, variant):
    """Break both ends while rendezvous transfers are in flight: every
    buffer (src-side, landing-side, pre-posted recv) must be returned."""
    client, server, client_ch, server_ch = _variant_pair(
        cluster, variant, port=9520)
    for _ in range(6):
        client.send_msg(client_ch, LARGE)
    settle(cluster, 30_000)           # announces/grants/fragments in flight
    client_ch.mark_broken("injected mid-transfer failure")
    server_ch.mark_broken("peer injected mid-transfer failure")
    settle(cluster, 500 * MILLIS)     # late CQEs and stray arrivals drain

    assert server_ch._rendezvous == {}
    assert client_ch._write_pending == {}
    assert_quiescent(client, server)


def test_write_variant_trace_chains_stay_zero_residual(cluster):
    """XR-Trace under Write-with-notify: CTS/FIN control traversals must
    not add or double-mark spans — every record finalizes with residual
    exactly zero and the large-message stages present."""
    config = XrdmaConfig(rendezvous_variant="write", req_rsp_mode=True,
                         trace_sample_mask=1)
    client, server, client_ch, server_ch = connect_pair(
        cluster, port=9530, client_config=config, server_config=config)
    sync = ClockSync(cluster.rng)
    client_tracer = Tracer(client, sync)
    server_tracer = Tracer(server, sync)

    n_small, n_large = 12, 6
    for _ in range(n_small):
        client.send_msg(client_ch, 512)
    for _ in range(n_large):
        client.send_msg(client_ch, LARGE)
    total = n_small + n_large

    got = _drain(cluster, server, total)
    settle(cluster, 300 * MILLIS)
    assert len(got) + len(server.polling()) == total

    assert len(client_tracer.records) == total
    assert all(record.complete for record in client_tracer.records.values())
    assert client_tracer.latency.count == total
    large_records = [record for record in client_tracer.records.values()
                     if dict(record.spans).get("rendezvous_read") is not None]
    assert len(large_records) == n_large
    for record in client_tracer.records.values():
        assert record.residual_ns == 0
        assert sum(d for _, d in record.spans) == record.total_ns

    close_channels(cluster, client)
    settle(cluster)
    assert_quiescent(client, server)
