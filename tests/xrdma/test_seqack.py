"""Unit + property tests for the seq-ack window (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xrdma import SeqAckWindow, WindowFull


def test_window_opens_with_full_capacity():
    window = SeqAckWindow(8)
    assert window.can_send()
    assert window.in_flight == 0


def test_one_slot_reserved_for_nop():
    window = SeqAckWindow(4)
    for _ in range(3):
        window.next_seq()
    assert not window.can_send()
    assert window.can_send_nop()
    window.next_seq(nop=True)
    assert not window.can_send_nop()


def test_next_seq_raises_when_full():
    window = SeqAckWindow(2)
    window.next_seq()
    with pytest.raises(WindowFull):
        window.next_seq()


def test_ack_frees_slots():
    window = SeqAckWindow(4)
    for _ in range(3):
        window.next_seq()
    assert window.on_ack(2) == 2
    assert window.in_flight == 1
    assert window.can_send()


def test_duplicate_ack_is_noop():
    window = SeqAckWindow(4)
    window.next_seq()
    window.on_ack(1)
    assert window.on_ack(1) == 0
    assert window.on_ack(0) == 0


def test_ack_beyond_seq_rejected():
    window = SeqAckWindow(4)
    window.next_seq()
    with pytest.raises(ValueError):
        window.on_ack(5)


def test_in_order_arrivals_advance_rta():
    window = SeqAckWindow(8)
    for seq in range(5):
        window.on_arrival(seq, complete=True)
    assert window.rta == 5
    assert window.wta == 5


def test_incomplete_arrival_blocks_rta():
    window = SeqAckWindow(8)
    window.on_arrival(0, complete=True)
    window.on_arrival(1, complete=False)   # large message, read pending
    window.on_arrival(2, complete=True)
    assert window.rta == 1                 # stuck behind seq 1
    window.on_complete(1)
    assert window.rta == 3                 # unblocks the whole prefix


def test_duplicate_arrival_ignored():
    window = SeqAckWindow(8)
    window.on_arrival(0, complete=True)
    window.on_arrival(0, complete=True)
    assert window.rta == 1


def test_unknown_completion_rejected():
    window = SeqAckWindow(8)
    with pytest.raises(ValueError):
        window.on_complete(3)


def test_stale_completion_ignored():
    window = SeqAckWindow(8)
    window.on_arrival(0, complete=True)
    window.on_complete(0)  # already complete; rta moved past it
    assert window.rta == 1


def test_ack_bookkeeping():
    window = SeqAckWindow(8)
    for seq in range(3):
        window.on_arrival(seq, complete=True)
    assert window.unacked_arrivals() == 3
    assert window.ack_to_send() == 3
    window.note_ack_sent()
    assert window.unacked_arrivals() == 0


def test_depth_validation():
    with pytest.raises(ValueError):
        SeqAckWindow(1)


def test_retransmit_upgrades_completeness():
    window = SeqAckWindow(8)
    window.on_arrival(0, complete=False)   # large message, read pending
    assert window.rta == 0
    # A middleware-level retransmit arrives *complete* (the payload was
    # whole by the time the sender retried): the flag must upgrade, or
    # the message never becomes ready and rta wedges forever.
    window.on_arrival(0, complete=True)
    assert window.rta == 1


def test_retransmit_never_downgrades_completeness():
    window = SeqAckWindow(8)
    window.on_arrival(1, complete=True)    # gap at 0 keeps it pending
    window.on_arrival(1, complete=False)   # stale duplicate of the header
    window.on_arrival(0, complete=True)
    assert window.rta == 2                 # seq 1 stayed complete


def test_is_duplicate_tracks_prefix_and_pending():
    window = SeqAckWindow(8)
    assert not window.is_duplicate(0)
    window.on_arrival(0, complete=True)
    assert window.is_duplicate(0)          # below rta now
    window.on_arrival(2, complete=False)
    assert window.is_duplicate(2)          # pending, out of order
    assert not window.is_duplicate(1)


# ---------------------------------------------------------------- properties

@given(st.lists(st.integers(min_value=0, max_value=30), max_size=60),
       st.integers(min_value=2, max_value=16))
@settings(max_examples=200)
def test_property_rta_is_contiguous_prefix(arrival_order, depth):
    """rta only ever covers a gap-free, fully-complete prefix."""
    window = SeqAckWindow(depth)
    seen = set()
    for seq in arrival_order:
        window.on_arrival(seq, complete=True)
        seen.add(seq)
        # Invariant: everything below rta was seen, in order.
        assert all(s in seen for s in range(window.rta))
        assert window.rta <= window.wta


@given(st.lists(st.booleans(), min_size=1, max_size=40),
       st.integers(min_value=3, max_value=12))
@settings(max_examples=200)
def test_property_window_never_exceeds_depth(send_or_ack, depth):
    """Interleaved sends and acks never push in_flight past depth - 1."""
    window = SeqAckWindow(depth)
    for do_send in send_or_ack:
        if do_send and window.can_send():
            window.next_seq()
        elif window.in_flight > 0:
            window.on_ack(window.acked + 1)
        assert 0 <= window.in_flight <= depth - 1


@given(st.lists(st.tuples(st.integers(0, 20), st.booleans()), max_size=50))
@settings(max_examples=200)
def test_property_mixed_large_small_arrivals(events):
    """Arbitrary arrival/completion interleavings keep rta monotone."""
    window = SeqAckWindow(32)
    pending = set()
    last_rta = 0
    for seq, complete in events:
        window.on_arrival(seq, complete=complete)
        if not complete:
            pending.add(seq)
        assert window.rta >= last_rta
        last_rta = window.rta
    for seq in sorted(pending):
        if seq >= window.rta and seq in window._pending_rx:
            window.on_complete(seq)
            assert window.rta >= last_rta
            last_rta = window.rta
