"""Fixtures for middleware tests: contexts and established channels."""

import pytest

from repro.xrdma import XrdmaConfig, XrdmaContext
from tests.conftest import Cluster, build_cluster, run_process


def make_context(cluster: Cluster, host_id: int,
                 config: XrdmaConfig = None) -> XrdmaContext:
    host = cluster.host(host_id)
    ctx = XrdmaContext(cluster.sim, host.verbs, host.cm, config=config,
                       name=f"xr-h{host_id}")
    return ctx


def connect_pair(cluster: Cluster, client_id: int = 0, server_id: int = 1,
                 port: int = 9100, client_config: XrdmaConfig = None,
                 server_config: XrdmaConfig = None):
    """Two contexts + an established channel pair (client_ch, server_ch)."""
    client = make_context(cluster, client_id, client_config)
    server = make_context(cluster, server_id, server_config)
    accepted = server.listen(port)

    def scenario():
        channel = yield from client.connect(server_id, port)
        server_channel = yield accepted.get()
        return channel, server_channel

    client_ch, server_ch = run_process(cluster, scenario())
    return client, server, client_ch, server_ch


@pytest.fixture
def xr(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    return cluster, client, server, client_ch, server_ch
