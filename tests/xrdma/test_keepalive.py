"""KeepAlive protocol extension (Sec. V-A): probing and leak prevention."""

import pytest

from repro.sim import MILLIS, SECONDS
from repro.xrdma import XrdmaConfig
from repro.xrdma.channel import ChannelBroken, ChannelState
from tests.conftest import run_process
from tests.xrdma.conftest import connect_pair


def fast_keepalive():
    return XrdmaConfig(keepalive_intv_ms=5.0)


def test_idle_channel_sends_probes(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=fast_keepalive(),
        server_config=fast_keepalive())
    cluster.sim.run(until=cluster.sim.now + 100 * MILLIS)
    assert client_ch.stats["keepalives_sent"] >= 5
    assert client_ch.state is ChannelState.READY


def test_probes_do_not_reach_the_application(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=fast_keepalive(),
        server_config=fast_keepalive())
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)
    assert len(server.incoming.items) == 0
    assert server_ch.stats["rx_msgs"] == 0


def test_busy_channel_sends_no_probes(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=fast_keepalive(),
        server_config=fast_keepalive())

    def chatter():
        for _ in range(40):
            client.send_msg(client_ch, 64)
            yield server.incoming.get()
            yield cluster.sim.timeout(2 * MILLIS)

    run_process(cluster, chatter(), limit=2 * SECONDS)
    assert client_ch.stats["keepalives_sent"] == 0


def test_dead_peer_detected_and_resources_released(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=fast_keepalive(),
        server_config=fast_keepalive())
    broken = []
    client_ch.on_broken = lambda ch: broken.append(ch.channel_id)
    in_use_before_crash = client.memcache.in_use_bytes
    assert in_use_before_crash > 0  # pre-posted receive buffers

    cluster.host(1).nic.crash()
    cluster.sim.run(until=cluster.sim.now + 5 * SECONDS)

    assert broken == [client_ch.channel_id]
    assert client_ch.state is ChannelState.BROKEN
    # Connection leak prevented: buffers went back to the cache ...
    assert client.memcache.in_use_bytes < in_use_before_crash
    # ... and the channel map no longer references the dead connection.
    assert client_ch.qp.qpn not in client.channels
    assert client.broken_channels == 1


def test_pending_messages_fail_when_peer_dies(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=fast_keepalive(),
        server_config=fast_keepalive())
    cluster.host(1).nic.crash()
    msg = client.send_msg(client_ch, 64)

    def waiter():
        try:
            yield msg.acked
            return "acked"
        except ChannelBroken as exc:
            return type(exc).__name__

    result = run_process(cluster, waiter(), limit=30 * SECONDS)
    assert result == "ChannelBroken"


def test_keepalive_interval_is_online_tunable(cluster):
    client, server, client_ch, server_ch = connect_pair(cluster)
    client.set_flag("keepalive_intv_ms", 2.0)
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)
    assert client_ch.stats["keepalives_sent"] >= 10
