"""Table I: the eight xrdma_* APIs over exactly three data structures."""

import pytest

from repro.sim import MICROS, SECONDS
from repro.xrdma import XrdmaChannel, XrdmaContext, XrdmaMessage
from tests.conftest import run_process
from tests.xrdma.conftest import connect_pair


def test_the_three_data_structures_exist():
    # Sec. IV-A: context, channel, and msg — versus ~30 verbs structures.
    assert XrdmaContext.__name__ == "XrdmaContext"
    assert XrdmaChannel.__name__ == "XrdmaChannel"
    assert XrdmaMessage.__name__ == "XrdmaMessage"


def test_send_msg_api(xr):
    cluster, client, server, client_ch, server_ch = xr
    msg = client.send_msg(client_ch, 100)
    assert isinstance(msg, XrdmaMessage)
    assert msg.acked is not None


def test_polling_api(xr):
    cluster, client, server, client_ch, server_ch = xr
    client.send_msg(client_ch, 100)
    cluster.sim.run(until=cluster.sim.now + 1_000_000)
    messages = server.polling(max_messages=16)
    assert len(messages) == 1
    assert server.polling() == []          # drained


def test_get_event_fd_and_process_event(xr):
    cluster, client, server, client_ch, server_ch = xr
    fd = server.get_event_fd()

    def waiter():
        yield fd.get()          # select/epoll-style blocking on the fd
        # put it back so process_event sees it
        return True

    client.send_msg(client_ch, 64)
    assert run_process(cluster, waiter(), limit=SECONDS)
    client.send_msg(client_ch, 64)
    cluster.sim.run(until=cluster.sim.now + 1_000_000)
    assert len(server.process_event()) == 1


def test_reg_and_dereg_mem_api(xr):
    cluster, client, server, client_ch, server_ch = xr

    def scenario():
        buffer = yield from client.reg_mem(8192)
        return buffer

    buffer = run_process(cluster, scenario(), limit=SECONDS)
    assert buffer.size == 8192
    assert buffer.rkey != 0
    in_use = client.memcache.in_use_bytes
    client.dereg_mem(buffer)
    assert client.memcache.in_use_bytes == in_use - 8192


def test_set_flag_api(xr):
    cluster, client, server, client_ch, server_ch = xr
    client.set_flag("req_rsp_mode", True)
    assert client.config.req_rsp_mode is True


def test_trace_request_api(xr):
    cluster, client, server, client_ch, server_ch = xr
    msg = client.send_msg(client_ch, 64)
    # Without a tracer attached the API degrades to None, not an error.
    assert client.trace_request(msg) is None
