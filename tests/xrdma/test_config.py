"""Table III: online vs offline configuration semantics."""

import pytest

from repro.xrdma import ConfigError, XrdmaConfig


def test_defaults_follow_the_paper():
    config = XrdmaConfig()
    assert config.small_msg_size == 4096          # Sec. IV-C
    assert config.fragment_bytes == 64 * 1024     # Sec. V-C
    assert config.memcache_mr_bytes == 4 * 1024 * 1024  # Sec. IV-E
    assert config.use_srq is False                # Sec. VII-F
    assert config.flow_control is True


def test_online_param_changes_at_runtime():
    config = XrdmaConfig()
    config.set_flag("keepalive_intv_ms", 10.0, running=True)
    assert config.keepalive_intv_ms == 10.0


@pytest.mark.parametrize("name", [
    "keepalive_intv_ms", "slow_threshold_ns", "polling_warn_cycle_ns",
    "trace_sample_mask", "req_rsp_mode", "flow_control",
])
def test_all_online_params_are_settable(name):
    config = XrdmaConfig()
    current = getattr(config, name)
    new = (not current) if isinstance(current, bool) else current
    config.set_flag(name, new, running=True)


@pytest.mark.parametrize("name,value", [
    ("use_srq", True),
    ("cq_size", 8192),
    ("small_msg_size", 8192),
    ("inflight_depth", 16),
    ("ibqp_alloc_type", "hugepage"),
])
def test_offline_params_rejected_at_runtime(name, value):
    config = XrdmaConfig()
    with pytest.raises(ConfigError, match="offline"):
        config.set_flag(name, value, running=True)


def test_offline_params_settable_before_start():
    config = XrdmaConfig()
    config.set_flag("use_srq", True, running=False)
    assert config.use_srq is True


def test_unknown_param_rejected():
    config = XrdmaConfig()
    with pytest.raises(ConfigError, match="unknown"):
        config.set_flag("no_such_thing", 1)


def test_window_depth_validation():
    with pytest.raises(ConfigError):
        XrdmaConfig(inflight_depth=1)
    with pytest.raises(ConfigError):
        XrdmaConfig(inflight_depth=4096, cq_size=4096)


def test_alloc_type_validation():
    with pytest.raises(ConfigError):
        XrdmaConfig(ibqp_alloc_type="weird")


def test_snapshot_roundtrip():
    config = XrdmaConfig()
    snap = config.snapshot()
    assert snap["small_msg_size"] == 4096
    assert set(snap) >= {"keepalive_intv_ms", "use_srq", "inflight_depth"}


def test_validation_after_set_flag():
    config = XrdmaConfig()
    with pytest.raises(ConfigError):
        config.set_flag("deadlock_check_intv_ms", 10.0, running=True) or \
            config.set_flag("inflight_depth", 0, running=False)
