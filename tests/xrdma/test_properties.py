"""End-to-end property tests: random traffic through real channels.

These run whole simulations inside hypothesis, so examples are kept small
and deadlines disabled; the invariants are the paper's hard guarantees —
exactly-once in-order delivery, RNR-freedom, and buffer balance.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.sim import SECONDS
from repro.xrdma import XrdmaConfig

# Sizes straddle the small/large threshold, including the exact boundary.
_SIZE = st.sampled_from([1, 64, 4095, 4096, 4097, 16384, 200_000])


@given(sizes=st.lists(_SIZE, min_size=1, max_size=25),
       depth=st.sampled_from([2, 4, 32]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_exactly_once_in_order(sizes, depth):
    cluster = build_cluster(2)
    config = XrdmaConfig(inflight_depth=depth)
    client = cluster.xrdma_context(0, config=config)
    server = cluster.xrdma_context(1, config=config)
    accepted = server.listen(9100)
    received = []

    def scenario():
        channel = yield from client.connect(1, 9100)
        for index, size in enumerate(sizes):
            client.send_msg(channel, size, payload=index)
        while len(received) < len(sizes):
            for msg in server.polling():
                received.append((msg.payload, msg.payload_size))
            yield cluster.sim.timeout(100_000)

    proc = cluster.sim.spawn(scenario())
    cluster.sim.run_until_event(proc, limit=60 * SECONDS)

    # Exactly once, in order, sizes intact.
    assert [payload for payload, _ in received] == list(range(len(sizes)))
    assert [size for _, size in received] == sizes
    # RNR-free regardless of burst shape and window depth.
    assert cluster.stats.rnr_naks == 0


@given(sizes=st.lists(_SIZE, min_size=1, max_size=12))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_memory_balance_after_acks(sizes):
    """Every buffer the data path borrows goes back once acked."""
    cluster = build_cluster(2)
    client = cluster.xrdma_context(0)
    server = cluster.xrdma_context(1)
    server.listen(9100)

    def scenario():
        channel = yield from client.connect(1, 9100)
        baseline_client = client.memcache.in_use_bytes
        baseline_server = server.memcache.in_use_bytes
        messages = [client.send_msg(channel, size) for size in sizes]
        for message in messages:
            yield message.acked
        return baseline_client, baseline_server

    proc = cluster.sim.spawn(scenario())
    baseline_client, baseline_server = cluster.sim.run_until_event(
        proc, limit=60 * SECONDS)
    assert client.memcache.in_use_bytes == baseline_client
    assert server.memcache.in_use_bytes == baseline_server


@given(request_sizes=st.lists(_SIZE, min_size=1, max_size=8),
       response_size=_SIZE)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_rpc_pairs_every_request(request_sizes, response_size):
    """Every request gets exactly its own response, any size mix."""
    cluster = build_cluster(2)
    client = cluster.xrdma_context(0)
    server = cluster.xrdma_context(1)
    accepted = server.listen(9100)

    def scenario():
        channel = yield from client.connect(1, 9100)
        server_channel = yield accepted.get()
        server_channel.on_request = lambda msg: server.send_response(
            msg, response_size, payload=("reply", msg.payload))
        requests = [client.send_request(channel, size, payload=index)
                    for index, size in enumerate(request_sizes)]
        replies = []
        for request in requests:
            response = yield request.response
            replies.append(response.payload)
        return replies

    proc = cluster.sim.spawn(scenario())
    replies = cluster.sim.run_until_event(proc, limit=60 * SECONDS)
    assert replies == [("reply", index)
                       for index in range(len(request_sizes))]
