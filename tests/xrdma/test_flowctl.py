"""FlowController + WrBudget units (fragmentation and queuing)."""

import pytest

from repro.rnic import Opcode, WorkRequest
from repro.sim import SECONDS
from repro.xrdma.flowctl import FlowController, WrBudget
from tests.conftest import establish, run_process


@pytest.fixture
def flow(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    host = cluster.host(0)
    controller = FlowController(host.verbs, conn_c.qp, max_outstanding=2,
                                fragment_bytes=64 * 1024, enabled=True)
    return cluster, controller, conn_c


def _wr(size=0):
    return WorkRequest(opcode=Opcode.WRITE, length=size, remote_addr=0,
                       rkey=1, signaled=False)


def test_fragment_sizes_split_large_payloads(flow):
    cluster, controller, conn = flow
    assert controller.fragment_sizes(10) == [10]
    assert controller.fragment_sizes(64 * 1024) == [64 * 1024]
    assert controller.fragment_sizes(200 * 1024) == \
        [64 * 1024, 64 * 1024, 64 * 1024, 8 * 1024]


def test_fragment_sizes_disabled_is_identity(cluster):
    conn_c, conn_s = establish(cluster, 0, 1)
    controller = FlowController(cluster.host(0).verbs, conn_c.qp,
                                max_outstanding=2, fragment_bytes=64 * 1024,
                                enabled=False)
    assert controller.fragment_sizes(1 << 20) == [1 << 20]


def test_post_queues_beyond_cap(flow):
    cluster, controller, conn = flow

    def scenario():
        for _ in range(5):
            yield from controller.post(_wr())

    run_process(cluster, scenario(), limit=SECONDS)
    assert controller.outstanding == 2
    assert controller.queued == 3
    assert controller.queued_total == 3


def test_completion_admits_queued(flow):
    cluster, controller, conn = flow

    def scenario():
        for _ in range(5):
            yield from controller.post(_wr())
        yield from controller.on_completion()

    run_process(cluster, scenario(), limit=SECONDS)
    assert controller.outstanding == 2    # one freed, one admitted
    assert controller.queued == 2


def test_shared_budget_caps_across_controllers(cluster):
    conn_a, _ = establish(cluster, 0, 1, service_port=7100)
    conn_b, _ = establish(cluster, 0, 1, service_port=7101)
    verbs = cluster.host(0).verbs
    budget = WrBudget(3)
    flow_a = FlowController(verbs, conn_a.qp, max_outstanding=8,
                            fragment_bytes=64 * 1024, budget=budget)
    flow_b = FlowController(verbs, conn_b.qp, max_outstanding=8,
                            fragment_bytes=64 * 1024, budget=budget)

    def scenario():
        for _ in range(4):
            yield from flow_a.post(_wr())
        for _ in range(4):
            yield from flow_b.post(_wr())

    run_process(cluster, scenario(), limit=SECONDS)
    assert flow_a.outstanding + flow_b.outstanding == 3
    assert budget.in_use == 3
    assert flow_a.queued + flow_b.queued == 5


def test_budget_drain_is_fair_fifo(cluster):
    conn_a, _ = establish(cluster, 0, 1, service_port=7100)
    conn_b, _ = establish(cluster, 0, 1, service_port=7101)
    verbs = cluster.host(0).verbs
    budget = WrBudget(1)
    flow_a = FlowController(verbs, conn_a.qp, max_outstanding=8,
                            fragment_bytes=64 * 1024, budget=budget)
    flow_b = FlowController(verbs, conn_b.qp, max_outstanding=8,
                            fragment_bytes=64 * 1024, budget=budget)

    def scenario():
        yield from flow_a.post(_wr())     # takes the only slot
        yield from flow_a.post(_wr())     # queued at A
        yield from flow_b.post(_wr())     # queued at B, waits behind A
        yield from flow_a.on_completion()

    run_process(cluster, scenario(), limit=SECONDS)
    # A's own queue wins the freed slot first (local drain before budget).
    assert flow_a.outstanding == 1
    assert flow_b.outstanding == 0


def test_drop_all_releases_budget(cluster):
    conn_a, _ = establish(cluster, 0, 1, service_port=7100)
    verbs = cluster.host(0).verbs
    budget = WrBudget(2)
    controller = FlowController(verbs, conn_a.qp, max_outstanding=8,
                                fragment_bytes=64 * 1024, budget=budget)

    def scenario():
        for _ in range(4):
            yield from controller.post(_wr())

    run_process(cluster, scenario(), limit=SECONDS)
    assert budget.in_use == 2
    dropped = controller.drop_all()
    assert dropped == 2
    assert budget.in_use == 0


def test_disabled_controller_never_queues(cluster):
    conn_a, _ = establish(cluster, 0, 1, service_port=7100)
    controller = FlowController(cluster.host(0).verbs, conn_a.qp,
                                max_outstanding=1, fragment_bytes=64 * 1024,
                                enabled=False, budget=WrBudget(1))

    def scenario():
        for _ in range(5):
            yield from controller.post(_wr())

    run_process(cluster, scenario(), limit=SECONDS)
    assert controller.queued == 0


def test_budget_validation():
    with pytest.raises(ValueError):
        WrBudget(0)


def test_drop_all_then_late_completions_do_not_double_release(cluster):
    """Teardown races in-flight WRs: drop_all() returns the slots, and the
    late completions must not release them a second time (that would let
    the budget drift below the true holdings and over-admit)."""
    conn_a, _ = establish(cluster, 0, 1, service_port=7100)
    conn_b, _ = establish(cluster, 0, 1, service_port=7101)
    verbs = cluster.host(0).verbs
    budget = WrBudget(2)
    flow_a = FlowController(verbs, conn_a.qp, max_outstanding=8,
                            fragment_bytes=64 * 1024, budget=budget)
    flow_b = FlowController(verbs, conn_b.qp, max_outstanding=8,
                            fragment_bytes=64 * 1024, budget=budget)

    def fill():
        for _ in range(2):
            yield from flow_a.post(_wr())

    run_process(cluster, fill(), limit=SECONDS)
    assert budget.in_use == 2
    flow_a.drop_all()                     # channel torn down, WRs in flight
    assert budget.in_use == 0

    def race():
        for _ in range(2):                # another channel takes the slots
            yield from flow_b.post(_wr())
        for _ in range(2):                # A's in-flight WRs complete late
            yield from flow_a.on_completion()

    run_process(cluster, race(), limit=SECONDS)
    assert budget.in_use == 2             # B's slots are still charged
    assert flow_b.outstanding == 2
    assert flow_a.outstanding == 0


def test_drain_keeps_cap_refused_waiter_queued(cluster):
    """A waiter refused on its *per-channel* cap (not the budget) must keep
    its place in the budget's FIFO; dropping it strands its queued WRs."""
    conn_a, _ = establish(cluster, 0, 1, service_port=7100)
    conn_b, _ = establish(cluster, 0, 1, service_port=7101)
    verbs = cluster.host(0).verbs
    budget = WrBudget(2)
    flow_a = FlowController(verbs, conn_a.qp, max_outstanding=1,
                            fragment_bytes=64 * 1024, budget=budget)
    flow_b = FlowController(verbs, conn_b.qp, max_outstanding=8,
                            fragment_bytes=64 * 1024, budget=budget)

    def scenario():
        yield from flow_a.post(_wr())     # slot 1; A now at its channel cap
        yield from flow_a.post(_wr())     # queued at A; A joins the waiters
        yield from flow_b.post(_wr())     # slot 2
        yield from flow_b.on_completion()  # frees slot 2 and drains

    run_process(cluster, scenario(), limit=SECONDS)
    # The drain polled A, which refused on max_outstanding=1.  A must
    # still be registered for the next freed slot.
    assert flow_a.queued == 1
    assert flow_a in budget._waiters
