"""Memory cache: pooling, growth/shrink, accounting, isolation."""

import pytest

from repro.xrdma.memcache import MemCache, MemCacheError
from tests.conftest import build_cluster, run_process


@pytest.fixture
def setup(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=1 << 20)
    return cluster, cache


def _alloc(cluster, cache, size):
    def proc():
        buffer = yield from cache.alloc(size)
        return buffer
    return run_process(cluster, proc())


def test_first_alloc_registers_one_mr(setup):
    cluster, cache = setup
    buffer = _alloc(cluster, cache, 4096)
    assert cache.mr_count == 1
    assert cache.occupied_bytes == 1 << 20
    assert cache.in_use_bytes == 4096
    assert buffer.rkey == buffer.mr.rkey


def test_allocations_share_one_arena(setup):
    cluster, cache = setup
    for _ in range(8):
        _alloc(cluster, cache, 4096)
    assert cache.mr_count == 1  # no extra registrations: the LITE lesson


def test_grows_when_arena_exhausted(setup):
    cluster, cache = setup
    _alloc(cluster, cache, 1 << 20)
    _alloc(cluster, cache, 4096)
    assert cache.mr_count == 2
    assert cache.grow_count == 2


def test_free_enables_reuse_without_growth(setup):
    cluster, cache = setup
    buffer = _alloc(cluster, cache, 1 << 20)
    cache.free(buffer)
    _alloc(cluster, cache, 1 << 20)
    assert cache.mr_count == 1


def test_free_list_coalesces(setup):
    cluster, cache = setup
    buffers = [_alloc(cluster, cache, 256 * 1024) for _ in range(4)]
    for buffer in buffers:
        cache.free(buffer)
    # After coalescing, one full-size allocation fits again.
    _alloc(cluster, cache, 1 << 20)
    assert cache.mr_count == 1


def test_double_free_rejected(setup):
    cluster, cache = setup
    buffer = _alloc(cluster, cache, 4096)
    cache.free(buffer)
    with pytest.raises(MemCacheError):
        cache.free(buffer)


def test_oversized_alloc_rejected(setup):
    cluster, cache = setup
    with pytest.raises(MemCacheError):
        _alloc(cluster, cache, (1 << 20) + 1)


def test_shrink_reclaims_idle_arenas(setup):
    cluster, cache = setup
    a = _alloc(cluster, cache, 1 << 20)
    b = _alloc(cluster, cache, 1 << 20)
    cache.free(a)
    cache.free(b)
    reclaimed = cache.shrink()
    assert reclaimed == 1          # one kept warm
    assert cache.mr_count == 1
    assert cache.shrink_count == 1


def test_shrink_spares_arenas_in_use(setup):
    cluster, cache = setup
    keep = _alloc(cluster, cache, 1 << 20)
    spare = _alloc(cluster, cache, 4096)
    cache.free(spare)
    # Arena 2 idle, arena 1 busy: only arena 2 may go.
    assert cache.shrink() == 1
    assert cache.mr_count == 1
    assert cache.in_use_bytes == 1 << 20


def test_try_alloc_never_registers(setup):
    cluster, cache = setup
    assert cache.try_alloc(4096) is None
    _alloc(cluster, cache, 4096)
    assert cache.try_alloc(4096) is not None


def test_isolated_mode_uses_high_addresses(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=1 << 20, isolated=True)
    buffer = _alloc(cluster, cache, 4096)
    assert buffer.addr >= 0x7F00_0000_0000


def test_isolated_mode_detects_out_of_bounds(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cache = MemCache(host.verbs, pd, mr_bytes=1 << 20, isolated=True)
    buffer = _alloc(cluster, cache, 4096)
    assert cache.check_access(buffer.addr, 4096)
    assert not cache.check_access(buffer.addr + (1 << 20), 4096)
    assert cache.out_of_bound_hits == 1


def test_shrink_never_reclaims_arena_with_live_buffers(setup):
    cluster, cache = setup
    hold = _alloc(cluster, cache, 1 << 20)     # arena 1, fully busy
    live = _alloc(cluster, cache, 4096)        # arena 2
    arena = cache._live[live.buffer_id][0]
    # A byte-accounting bug (or a release racing teardown) can make the
    # arena *look* idle while a buffer is still handed out.  The live map
    # is the ground truth and must veto reclamation.
    arena.used_bytes = 0
    arena.free = [(arena.mr.addr, arena.mr.length)]
    assert cache.shrink() == 0
    assert arena in cache._arenas
    cache._live.pop(live.buffer_id)            # discard the corrupted pair
    cache.free(hold)


def test_free_into_reclaimed_arena_rejected(setup):
    cluster, cache = setup
    hold = _alloc(cluster, cache, 1 << 20)     # arena 1, fully busy
    live = _alloc(cluster, cache, 4096)        # arena 2
    # Simulate the failure free() must defend against: the buffer's arena
    # is gone (deregistered) while the buffer is still out.  Releasing
    # into it would silently skew the Fig. 11c occupancy accounting.
    arena = cache._live[live.buffer_id][0]
    cache._arenas.remove(arena)
    with pytest.raises(MemCacheError):
        cache.free(live)


def test_prewarm_registers_up_front(setup):
    cluster, cache = setup

    def proc():
        yield from cache.prewarm(3)

    run_process(cluster, proc())
    assert cache.mr_count == 3
    assert cache.in_use_bytes == 0
