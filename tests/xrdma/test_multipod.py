"""X-RDMA across a multi-pod Clos (traffic through leaf and spine tiers)."""

import pytest

from repro.cluster import build_cluster
from repro.sim import SECONDS
from tests.conftest import run_process


@pytest.fixture
def fabric():
    # 2 pods × 2 ToRs × 2 hosts: hosts 0-3 in pod 0, hosts 4-7 in pod 1.
    return build_cluster(8, n_pods=2, tors_per_pod=2, hosts_per_tor=2,
                         leaves_per_pod=2, n_spines=2)


def test_cross_pod_rpc(fabric):
    client = fabric.xrdma_context(0)
    server = fabric.xrdma_context(7)           # other pod: 5 switch hops
    accepted = server.listen(9100)
    assert fabric.topology.path_hops(0, 7) == 5

    def scenario():
        channel = yield from client.connect(7, 9100)
        server_channel = yield accepted.get()
        server_channel.on_request = \
            lambda msg: server.send_response(msg, 64)
        t0 = fabric.sim.now
        request = client.send_request(channel, 64)
        yield request.response
        return (fabric.sim.now - t0) / 2

    one_way = run_process(fabric, scenario(), limit=10 * SECONDS)
    # Four extra switch hops versus same-ToR: clearly slower but sane.
    assert 5_000 < one_way < 20_000


def test_cross_pod_large_transfer(fabric):
    client = fabric.xrdma_context(1)
    server = fabric.xrdma_context(6)
    server.listen(9100)

    def scenario():
        channel = yield from client.connect(6, 9100)
        msg = client.send_msg(channel, 4 << 20)
        incoming = yield server.incoming.get()
        yield msg.acked
        return incoming

    incoming = run_process(fabric, scenario(), limit=10 * SECONDS)
    assert incoming.payload_size == 4 << 20
    assert fabric.stats.rnr_naks == 0


def test_pod_local_faster_than_cross_pod(fabric):
    def rpc_latency(dst):
        client = fabric.xrdma_context(0)
        server = fabric.xrdma_context(dst)
        accepted = server.listen(9100)

        def scenario():
            channel = yield from client.connect(dst, 9100)
            server_channel = yield accepted.get()
            server_channel.on_request = \
                lambda msg: server.send_response(msg, 64)
            t0 = fabric.sim.now
            request = client.send_request(channel, 64)
            yield request.response
            return fabric.sim.now - t0

        return run_process(fabric, scenario(), limit=10 * SECONDS)

    same_tor = rpc_latency(1)       # 1 hop
    cross_pod = rpc_latency(5)      # 5 hops
    assert same_tor < cross_pod


def test_many_flows_across_spines(fabric):
    """All pod-0 hosts blast all pod-1 hosts; everything arrives intact."""
    contexts = {h: fabric.xrdma_context(h) for h in range(8)}
    for h in range(4, 8):
        contexts[h].listen(9100)
    counts = {h: 0 for h in range(4, 8)}

    def sink(h):
        while True:
            yield contexts[h].incoming.get()
            counts[h] += 1

    for h in range(4, 8):
        fabric.sim.spawn(sink(h))

    def source(src):
        for dst in range(4, 8):
            channel = yield from contexts[src].connect(dst, 9100)
            for _ in range(5):
                contexts[src].send_msg(channel, 32 * 1024)

    procs = [fabric.sim.spawn(source(src)) for src in range(4)]
    fabric.sim.run_until_event(fabric.sim.all_of(procs),
                               limit=30 * SECONDS)
    fabric.sim.run(until=fabric.sim.now + 1 * SECONDS)
    assert all(count == 20 for count in counts.values())
    # Spine links actually carried traffic.
    spine_tx = sum(port.tx_segments
                   for spine in fabric.topology.spines
                   for port in spine.ports)
    assert spine_tx > 0
