"""End-to-end middleware behaviour: messages, RPC, windows, rendezvous."""

import pytest

from repro.sim import MICROS, MILLIS, SECONDS
from repro.xrdma import MessageKind, XrdmaConfig
from repro.xrdma.channel import ChannelBroken, ChannelState
from tests.conftest import build_cluster, run_process
from tests.xrdma.conftest import connect_pair, make_context


def test_small_message_delivery(xr):
    cluster, client, server, client_ch, server_ch = xr

    def scenario():
        msg = client.send_msg(client_ch, 256, payload={"hello": 1})
        incoming = yield server.incoming.get()
        return msg, incoming

    sent, received = run_process(cluster, scenario())
    assert received.payload == {"hello": 1}
    assert received.payload_size == 256
    assert received.channel is server_ch


def test_sender_ack_fires_after_peer_consumption(xr):
    cluster, client, server, client_ch, server_ch = xr

    def scenario():
        msg = client.send_msg(client_ch, 128)
        yield server.incoming.get()
        rtt_ns = yield msg.acked
        return rtt_ns

    rtt_ns = run_process(cluster, scenario(), limit=2 * SECONDS)
    assert rtt_ns > 0


def test_large_message_uses_rendezvous_read(xr):
    cluster, client, server, client_ch, server_ch = xr
    size = 1 << 20  # 1 MB ≫ small_msg_size

    def scenario():
        client.send_msg(client_ch, size, payload="big")
        incoming = yield server.incoming.get()
        return incoming

    received = run_process(cluster, scenario())
    assert received.payload == "big"
    assert received.payload_size == size
    assert server_ch.stats["rendezvous_reads"] >= 1
    # Flow control fragments the read into 64 KB pieces.
    assert server_ch.stats["rendezvous_reads"] == size // (64 * 1024)


def test_large_message_without_flow_control_is_one_read(cluster):
    config = XrdmaConfig(flow_control=False)
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=config, server_config=config)
    size = 1 << 20

    def scenario():
        client.send_msg(client_ch, size)
        incoming = yield server.incoming.get()
        return incoming

    run_process(cluster, scenario())
    assert server_ch.stats["rendezvous_reads"] == 1


def test_rpc_request_response(xr):
    cluster, client, server, client_ch, server_ch = xr

    def scenario():
        request = client.send_request(client_ch, 200, payload="ping")
        incoming = yield server.incoming.get()
        assert incoming.is_request
        server.send_response(incoming, 300, payload="pong")
        response = yield request.response
        return response

    response = run_process(cluster, scenario())
    assert response.payload == "pong"
    assert response.payload_size == 300


def test_rpc_large_response_read_replaces_write(xr):
    cluster, client, server, client_ch, server_ch = xr
    response_size = 512 * 1024

    def scenario():
        request = client.send_request(client_ch, 100)
        incoming = yield server.incoming.get()
        server.send_response(incoming, response_size)
        response = yield request.response
        return response

    response = run_process(cluster, scenario())
    assert response.payload_size == response_size
    # The requester fetched the response via RDMA Read.
    assert client_ch.stats["rendezvous_reads"] >= 1


def test_rpc_server_handler_mode(xr):
    cluster, client, server, client_ch, server_ch = xr
    server_ch.on_request = lambda msg: server.send_response(
        msg, 64, payload=("echo", msg.payload))

    def scenario():
        request = client.send_request(client_ch, 128, payload=7)
        response = yield request.response
        return response

    response = run_process(cluster, scenario())
    assert response.payload == ("echo", 7)


def test_window_limits_in_flight_messages(xr):
    cluster, client, server, client_ch, server_ch = xr
    depth = client_ch.window.depth
    # Queue far more than the window allows; they must trickle through.
    for _ in range(depth * 3):
        client.send_msg(client_ch, 64)
    cluster.sim.run(until=cluster.sim.now + 50 * MICROS)
    assert client_ch.window.in_flight <= depth - 1

    def drain():
        got = 0
        while got < depth * 3:
            yield server.incoming.get()
            got += 1
        return got

    assert run_process(cluster, drain(), limit=5 * SECONDS) == depth * 3


def test_no_rnr_under_burst(xr):
    """Fig. 9: the window keeps bursts inside pre-posted receive buffers."""
    cluster, client, server, client_ch, server_ch = xr
    for _ in range(200):
        client.send_msg(client_ch, 1024)

    def drain():
        got = 0
        while got < 200:
            yield server.incoming.get()
            got += 1

    run_process(cluster, drain(), limit=5 * SECONDS)
    assert cluster.stats.rnr_naks == 0


def test_standalone_ack_when_traffic_is_one_way(xr):
    cluster, client, server, client_ch, server_ch = xr
    n = client_ch.window.depth * 2

    def scenario():
        messages = [client.send_msg(client_ch, 64) for _ in range(n)]
        for _ in range(n):
            yield server.incoming.get()
        # All sender-side acks must eventually fire with no reverse data.
        for message in messages:
            yield message.acked

    run_process(cluster, scenario(), limit=5 * SECONDS)
    assert server_ch.stats["acks_sent"] > 0


def test_bidirectional_traffic(xr):
    cluster, client, server, client_ch, server_ch = xr
    n = 50

    def client_proc():
        for _ in range(n):
            client.send_msg(client_ch, 128)
        got = 0
        while got < n:
            yield client.incoming.get()
            got += 1

    def server_proc():
        for _ in range(n):
            server.send_msg(server_ch, 128)
        got = 0
        while got < n:
            yield server.incoming.get()
            got += 1

    proc_a = cluster.sim.spawn(client_proc())
    proc_b = cluster.sim.spawn(server_proc())
    cluster.sim.run(until=cluster.sim.now + 2 * SECONDS)
    assert proc_a.processed and proc_b.processed


def test_send_on_broken_channel_raises(xr):
    cluster, client, server, client_ch, server_ch = xr
    client_ch.mark_broken("test")
    with pytest.raises(ChannelBroken):
        client.send_msg(client_ch, 64)


def test_latency_overhead_over_raw_verbs_is_modest(xr):
    """Fig. 7: X-RDMA stays within ~10% of ibv_rc_pingpong."""
    cluster, client, server, client_ch, server_ch = xr
    server_ch.on_request = lambda msg: server.send_response(msg, 64)
    latencies = []

    def scenario():
        for _ in range(30):
            t0 = cluster.sim.now
            request = client.send_request(client_ch, 64)
            yield request.response
            latencies.append((cluster.sim.now - t0) / 2)

    run_process(cluster, scenario(), limit=5 * SECONDS)
    mean_us = sum(latencies) / len(latencies) / 1000
    # Raw verbs one-way is ≈4.8 µs here; the middleware must stay close.
    assert mean_us < 6.5


def test_close_channel_recycles_qp(xr):
    cluster, client, server, client_ch, server_ch = xr
    assert len(client.qpcache) == 0

    def scenario():
        yield from client.close_channel(client_ch)

    run_process(cluster, scenario(), limit=2 * SECONDS)
    cluster.sim.run(until=cluster.sim.now + 100 * MILLIS)
    assert client_ch.state is ChannelState.CLOSED
    assert len(client.qpcache) == 1
    # The peer learned about the close and recycled too.
    assert server_ch.state is ChannelState.CLOSED
    assert len(server.qpcache) == 1


def test_reconnect_uses_qp_cache(xr):
    cluster, client, server, client_ch, server_ch = xr

    def close_it():
        yield from client.close_channel(client_ch)

    run_process(cluster, close_it(), limit=2 * SECONDS)
    hits_before = client.qpcache.hits

    def reconnect():
        channel = yield from client.connect(1, 9100)
        return channel

    run_process(cluster, reconnect(), limit=2 * SECONDS)
    assert client.qpcache.hits == hits_before + 1


def test_mem_usage_tracks_traffic(xr):
    """Fig. 11c: in-use returns to baseline after a burst; occupied stays."""
    cluster, client, server, client_ch, server_ch = xr
    baseline_in_use = client.memcache.in_use_bytes

    def scenario():
        msgs = [client.send_msg(client_ch, 512 * 1024) for _ in range(4)]
        for _ in range(4):
            yield server.incoming.get()
        for message in msgs:
            yield message.acked

    run_process(cluster, scenario(), limit=5 * SECONDS)
    assert client.memcache.in_use_bytes == baseline_in_use
    assert client.memcache.occupied_bytes >= client.memcache.in_use_bytes
