"""The NOP deadlock breaker (Sec. V-B, "Avoid Deadlock").

Both sides fill their windows simultaneously with more traffic queued;
acks can only piggyback on data, data needs window slots, and the
standalone-ACK path is suppressed while sends are pending.  The
per-context timer must detect the stall and break it with a NOP.
"""

import pytest

from repro.sim import MILLIS, SECONDS
from repro.xrdma import XrdmaConfig
from tests.conftest import run_process
from tests.xrdma.conftest import connect_pair


def tiny_window():
    return XrdmaConfig(inflight_depth=4, deadlock_check_intv_ms=1.0)


def test_bidirectional_window_exhaustion_resolves(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=tiny_window(), server_config=tiny_window())
    n = 24  # each side queues 8x its window

    # Both sides blast simultaneously — neither consumes yet.
    for _ in range(n):
        client.send_msg(client_ch, 256)
        server.send_msg(server_ch, 256)

    def drain():
        got_client = got_server = 0
        while got_client < n or got_server < n:
            if client.incoming.items:
                client.polling()
                got_client = client_ch.stats["rx_msgs"]
            if server.incoming.items:
                server.polling()
                got_server = server_ch.stats["rx_msgs"]
            yield cluster.sim.timeout(100_000)
        return got_client, got_server

    got_client, got_server = run_process(cluster, drain(),
                                         limit=30 * SECONDS)
    assert got_client == n and got_server == n


def test_nop_fires_when_window_stalls(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=tiny_window(), server_config=tiny_window())
    # The client fills its window and keeps a backlog; the server consumes
    # but sends nothing back, while ALSO having its own backlog so the
    # standalone-ACK fast path (which requires an empty send queue) is
    # blocked on both sides.
    for _ in range(16):
        client.send_msg(client_ch, 256)
        server.send_msg(server_ch, 256)
    cluster.sim.run(until=cluster.sim.now + 200 * MILLIS)
    nops = (client_ch.stats["nops_sent"] + server_ch.stats["nops_sent"])
    acks = (client_ch.stats["acks_sent"] + server_ch.stats["acks_sent"])
    # Progress required control messages: NOPs (or delayed acks once the
    # queue drained).  The key assertion: everything was delivered.
    assert client_ch.stats["tx_msgs"] == 16
    assert server_ch.stats["tx_msgs"] == 16
    assert nops + acks > 0


def test_nop_reserved_slot_breaks_full_window_deadlock(cluster):
    """Both windows wedge completely; one NOP through the reserved slot
    un-deadlocks the whole exchange (Sec. V-B).

    Timers are effectively disabled so the stall persists until we drive
    one deadlock round by hand — isolating the reserved-slot mechanism
    from the periodic machinery the other tests already cover.
    """
    def frozen_timers():
        return XrdmaConfig(inflight_depth=4,
                           deadlock_check_intv_ms=1e9,
                           keepalive_intv_ms=1e9)

    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=frozen_timers(),
        server_config=frozen_timers())
    n = 8
    for _ in range(n):
        client.send_msg(client_ch, 256)
        server.send_msg(server_ch, 256)
    cluster.sim.run(until=cluster.sim.now + 50 * MILLIS)

    # The genuine deadlock: both windows closed (depth-1 in flight), both
    # backlogs non-empty, so the standalone-ACK fast path (which needs an
    # empty send queue) is suppressed on both sides.  Nothing moves.
    assert client_ch.window.stalled() and server_ch.window.stalled()
    assert client_ch.pending_send and server_ch.pending_send
    assert client_ch.stats["tx_msgs"] < n
    assert client_ch.needs_nop()
    assert client_ch.stats["nops_sent"] == 0

    def breaker():
        yield from client._deadlock_round()

    run_process(cluster, breaker(), limit=SECONDS)
    assert client_ch.stats["nops_sent"] == 1

    # The NOP's piggybacked ack reopens the server's window; from there
    # acks ride the reverse data and the backlog drains on both sides.
    cluster.sim.run(until=cluster.sim.now + SECONDS)
    assert client_ch.stats["tx_msgs"] == n
    assert server_ch.stats["tx_msgs"] == n
    assert client_ch.stats["rx_msgs"] == n
    assert server_ch.stats["rx_msgs"] == n
    assert cluster.stats.rnr_naks == 0


def test_window_stall_detection_predicate(cluster):
    client, server, client_ch, server_ch = connect_pair(
        cluster, client_config=tiny_window(), server_config=tiny_window())
    # Manufacture the predicate's exact state on a channel object.
    channel = client_ch
    while channel.window.can_send():
        channel.window.next_seq()
    channel.window.on_arrival(0, complete=True)   # something to ack
    channel.pending_send.append(object())
    assert channel.needs_nop()
    channel.window.note_ack_sent()
    assert not channel.needs_nop()                # nothing left to tell peer
