"""QP cache: recycling, hit accounting, capacity, concurrent churn."""

import pytest

from repro.rnic import QpState
from repro.sim import MILLIS
from repro.xrdma import QpCache
from tests.conftest import run_process


@pytest.fixture
def setup(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cq = host.verbs.create_cq()
    cache = QpCache(host.verbs, pd, cq, cq, capacity=2)
    return cluster, host, cache


def _create_qp(cluster, host, cache):
    def proc():
        qp = yield host.verbs.create_qp(cache.pd, cache.send_cq,
                                        cache.recv_cq)
        return qp
    return run_process(cluster, proc())


def test_empty_cache_misses(setup):
    cluster, host, cache = setup
    assert cache.get() is None
    assert cache.misses == 1


def test_put_then_get_hits(setup):
    cluster, host, cache = setup
    qp = _create_qp(cluster, host, cache)

    def recycle():
        yield from cache.put(qp)

    run_process(cluster, recycle())
    assert len(cache) == 1
    got = cache.get()
    assert got is qp
    assert got.state is QpState.RESET
    assert cache.hits == 1


def test_recycled_qp_state_is_clean(setup):
    cluster, host, cache = setup
    qp = _create_qp(cluster, host, cache)
    qp.transition(QpState.INIT)
    qp.send_psn = 99

    def recycle():
        yield from cache.put(qp)

    run_process(cluster, recycle())
    got = cache.get()
    assert got.send_psn == 0
    assert got.remote_host is None


def test_capacity_overflow_destroys(setup):
    cluster, host, cache = setup
    qps = [_create_qp(cluster, host, cache) for _ in range(3)]

    def recycle_all():
        for qp in qps:
            yield from cache.put(qp)

    run_process(cluster, recycle_all())
    assert len(cache) == 2
    # The overflow QP was destroyed at the NIC.
    assert qps[2].qpn not in host.nic.qps


def test_prewarm_fills_pool(setup):
    cluster, host, cache = setup

    def warm():
        yield from cache.prewarm(5)

    run_process(cluster, warm())
    assert len(cache) == 2  # clamped at capacity


def test_fifo_recycling_order(setup):
    cluster, host, cache = setup
    qp_a = _create_qp(cluster, host, cache)
    qp_b = _create_qp(cluster, host, cache)

    def recycle():
        yield from cache.put(qp_a)
        yield from cache.put(qp_b)

    run_process(cluster, recycle())
    assert cache.get() is qp_a
    assert cache.get() is qp_b


# ------------------------------------------------------- concurrent churn
#
# put/prewarm yield verbs calls, so sim time passes between a capacity
# check and the corresponding append.  These tests race many recyclers
# for the last pool slots; the re-check-after-yield fix must hold the
# `len(pool) <= capacity` invariant (fatal under tests) while keeping
# exact counter accounting and destroying every overshoot QP at the NIC.

def _settle(cluster, ns=10 * MILLIS):
    def sleeper():
        yield cluster.sim.timeout(ns)
    run_process(cluster, sleeper())


def _nic_census(host, cache):
    """NIC-registered QPNs vs the cache pool (all QPs belong to the cache)."""
    return set(host.nic.qps), {qp.qpn for qp in cache._pool}


def test_concurrent_puts_never_overshoot(setup):
    cluster, host, cache = setup
    qps = [_create_qp(cluster, host, cache) for _ in range(6)]

    def put_one(qp):
        yield from cache.put(qp)

    for qp in qps:
        cluster.sim.spawn(put_one(qp))
    _settle(cluster)

    assert len(cache) == 2
    assert cache.puts == 6
    assert cache.puts == cache.recycled + cache.destroyed
    assert cache.recycled == 2
    assert cache.destroyed == 4
    # Every overshoot QP was destroyed at the NIC; the pool is exactly
    # what remains registered.
    nic_qpns, pool_qpns = _nic_census(host, cache)
    assert nic_qpns == pool_qpns


def test_concurrent_prewarm_respects_capacity(setup):
    cluster, host, cache = setup

    def warm():
        yield from cache.prewarm(3)

    cluster.sim.spawn(warm())
    cluster.sim.spawn(warm())
    _settle(cluster)

    assert len(cache) == 2
    # Prewarm overshoot (a create that raced for the last slot) is
    # destroyed, never leaked: created == pooled + destroyed.
    assert host.verbs.qps_created == len(cache) + cache.destroyed
    nic_qpns, pool_qpns = _nic_census(host, cache)
    assert nic_qpns == pool_qpns


def test_concurrent_put_prewarm_churn(setup):
    cluster, host, cache = setup
    qps = [_create_qp(cluster, host, cache) for _ in range(3)]

    def put_one(qp):
        yield from cache.put(qp)

    def warm():
        yield from cache.prewarm(3)

    for qp in qps:
        cluster.sim.spawn(put_one(qp))
    cluster.sim.spawn(warm())
    _settle(cluster)

    assert len(cache) == 2
    assert cache.puts == 3
    # `destroyed` is shared between put overshoot and prewarm overshoot,
    # so the conservation law is NIC-level: every QP ever created is now
    # either pooled or destroyed.
    assert host.verbs.qps_created == len(cache) + cache.destroyed
    nic_qpns, pool_qpns = _nic_census(host, cache)
    assert nic_qpns == pool_qpns
