"""QP cache: recycling, hit accounting, capacity."""

import pytest

from repro.rnic import QpState
from repro.xrdma import QpCache
from tests.conftest import run_process


@pytest.fixture
def setup(cluster):
    host = cluster.host(0)
    pd = host.verbs.alloc_pd()
    cq = host.verbs.create_cq()
    cache = QpCache(host.verbs, pd, cq, cq, capacity=2)
    return cluster, host, cache


def _create_qp(cluster, host, cache):
    def proc():
        qp = yield host.verbs.create_qp(cache.pd, cache.send_cq,
                                        cache.recv_cq)
        return qp
    return run_process(cluster, proc())


def test_empty_cache_misses(setup):
    cluster, host, cache = setup
    assert cache.get() is None
    assert cache.misses == 1


def test_put_then_get_hits(setup):
    cluster, host, cache = setup
    qp = _create_qp(cluster, host, cache)

    def recycle():
        yield from cache.put(qp)

    run_process(cluster, recycle())
    assert len(cache) == 1
    got = cache.get()
    assert got is qp
    assert got.state is QpState.RESET
    assert cache.hits == 1


def test_recycled_qp_state_is_clean(setup):
    cluster, host, cache = setup
    qp = _create_qp(cluster, host, cache)
    qp.transition(QpState.INIT)
    qp.send_psn = 99

    def recycle():
        yield from cache.put(qp)

    run_process(cluster, recycle())
    got = cache.get()
    assert got.send_psn == 0
    assert got.remote_host is None


def test_capacity_overflow_destroys(setup):
    cluster, host, cache = setup
    qps = [_create_qp(cluster, host, cache) for _ in range(3)]

    def recycle_all():
        for qp in qps:
            yield from cache.put(qp)

    run_process(cluster, recycle_all())
    assert len(cache) == 2
    # The overflow QP was destroyed at the NIC.
    assert qps[2].qpn not in host.nic.qps


def test_prewarm_fills_pool(setup):
    cluster, host, cache = setup

    def warm():
        yield from cache.prewarm(5)

    run_process(cluster, warm())
    assert len(cache) == 2  # clamped at capacity


def test_fifo_recycling_order(setup):
    cluster, host, cache = setup
    qp_a = _create_qp(cluster, host, cache)
    qp_b = _create_qp(cluster, host, cache)

    def recycle():
        yield from cache.put(qp_a)
        yield from cache.put(qp_b)

    run_process(cluster, recycle())
    assert cache.get() is qp_a
    assert cache.get() is qp_b
